//! Model-checking the runtime's real synchronization protocols.
//!
//! Each protocol comes in a correct variant, which must pass **exhaustive**
//! exploration at preemption bound 2 (`report.complete` is asserted, so a
//! silently truncated search fails the test), and deliberately buggy
//! variants, which the checker must catch within the same bound.  The buggy
//! variants live only inside the model enums — nothing in the production
//! tree carries them — and each one is a single careless edit away from the
//! shipped code, which is exactly the regression class this suite pins.

use tstream_check::models::backpressure::{producer_consumer_scenario, QueueVariant};
use tstream_check::models::barrier::{
    lockstep_scenario, poison_scenario, wraparound_scenario, BarrierVariant,
};
use tstream_check::models::groupcommit::{group_commit_scenario, GroupCommitVariant};
use tstream_check::models::injector::{handoff_scenario, InjectorVariant};
use tstream_check::models::ship::{shipping_scenario, ShipVariant};
use tstream_check::models::wal::{seal_failure_scenario, WalVariant};
use tstream_check::Model;

// ---------------------------------------------------------------------------
// CyclicBarrier (crates/stream/src/barrier.rs)
// ---------------------------------------------------------------------------

#[test]
fn barrier_lockstep_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| lockstep_scenario(2, 2, BarrierVariant::Correct));
    assert!(report.complete);
    assert!(report.schedules > 10, "the scenario must actually branch");
}

#[test]
fn barrier_generation_wraparound_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| wraparound_scenario(BarrierVariant::Correct));
    assert!(report.complete);
}

#[test]
fn barrier_poison_wakes_blocked_waiters_in_every_schedule() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| poison_scenario(BarrierVariant::Correct));
    assert!(report.complete);
}

#[test]
fn barrier_without_generation_counter_deadlocks() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| lockstep_scenario(2, 2, BarrierVariant::NoGeneration))
        .expect_err("the generation-less barrier must wedge a lapped waiter");
    assert!(
        violation.message.contains("deadlock"),
        "unexpected violation: {violation}"
    );
}

/// The poison-ordering bug the production code's post-wake re-check exists
/// to prevent, reintroduced in the model variant: a waiter that checks the
/// poison flag only on entry sleeps through the poison broadcast.
#[test]
fn barrier_poison_check_on_entry_only_loses_the_wakeup() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| poison_scenario(BarrierVariant::PoisonCheckOnEntryOnly))
        .expect_err("the entry-only poison check must lose a wakeup");
    assert!(
        violation.message.contains("deadlock"),
        "unexpected violation: {violation}"
    );
}

// ---------------------------------------------------------------------------
// ExecutorPool injector hand-off (crates/core/src/runtime.rs)
// ---------------------------------------------------------------------------

#[test]
fn injector_handoff_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| handoff_scenario(2, 2, InjectorVariant::Correct));
    assert!(report.complete);
    assert!(report.schedules > 10, "the scenario must actually branch");
}

#[test]
fn injector_without_single_injector_role_breaks_batch_atomicity() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| handoff_scenario(2, 2, InjectorVariant::NoInjectorRole))
        .expect_err("concurrent injectors must interleave two batches");
    assert!(
        violation.message.contains("not atomic"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn injector_pump_without_progress_notify_wedges_a_stager() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| handoff_scenario(2, 2, InjectorVariant::PumpWithoutProgressNotify))
        .expect_err("a pump that never signals progress must strand a stager");
    assert!(
        violation.message.contains("deadlock"),
        "unexpected violation: {violation}"
    );
}

// ---------------------------------------------------------------------------
// Per-session backpressure queue
// ---------------------------------------------------------------------------

#[test]
fn backpressure_queue_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| producer_consumer_scenario(2, 2, QueueVariant::Correct));
    assert!(report.complete);
    assert!(report.schedules > 10, "the scenario must actually branch");
}

#[test]
fn backpressure_if_instead_of_while_overfills_the_queue() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| producer_consumer_scenario(2, 2, QueueVariant::IfInsteadOfWhile))
        .expect_err("a woken producer that skips the re-check must overfill");
    assert!(
        violation.message.contains("backpressure bound violated"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn backpressure_pop_without_notify_strands_a_producer() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| producer_consumer_scenario(2, 2, QueueVariant::PopWithoutNotify))
        .expect_err("a pop that never signals not_full must strand a producer");
    assert!(
        violation.message.contains("deadlock"),
        "unexpected violation: {violation}"
    );
}

// ---------------------------------------------------------------------------
// WAL seal/poison + checkpoint-after-seal gate (crates/recovery)
// ---------------------------------------------------------------------------

#[test]
fn wal_seal_poison_checkpoint_gate_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| seal_failure_scenario(WalVariant::Correct));
    assert!(report.complete);
    assert!(report.schedules > 10, "the scenario must actually branch");
}

#[test]
fn wal_publish_before_seal_completes_raises_the_recovery_floor() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| seal_failure_scenario(WalVariant::PublishBeforeSealCompletes))
        .expect_err("a checkpoint racing the early publish must catch it");
    assert!(
        violation
            .message
            .contains("recovery floor raised past an unsealed tail"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn wal_seal_failure_without_poison_accepts_appends_past_the_torn_tail() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| seal_failure_scenario(WalVariant::SealFailureWithoutPoison))
        .expect_err("an unpoisoned writer must accept the forbidden append");
    assert!(
        violation.message.contains("the writer must be poisoned"),
        "unexpected violation: {violation}"
    );
}

// ---------------------------------------------------------------------------
// WAL group-commit ack pipeline (crates/recovery/src/coordinator.rs)
// ---------------------------------------------------------------------------

#[test]
fn group_commit_ack_pipeline_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| group_commit_scenario(GroupCommitVariant::Correct));
    assert!(report.complete);
    assert!(report.schedules > 10, "the scenario must actually branch");
}

#[test]
fn group_commit_ack_on_submit_loses_events_to_a_crash() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| group_commit_scenario(GroupCommitVariant::AckOnSubmit))
        .expect_err("a probe racing the early ack must catch it");
    assert!(
        violation
            .message
            .contains("an ack preceded the covering group sync"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn group_commit_without_backpressure_overlaps_segment_writes() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| group_commit_scenario(GroupCommitVariant::SubmitWithoutDrain))
        .expect_err("two windows in flight must trip the overlap guard");
    assert!(
        violation.message.contains("windows in flight at once"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn group_commit_seal_without_drain_buries_frames_behind_the_marker() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| group_commit_scenario(GroupCommitVariant::SealWithoutDrain))
        .expect_err("an undrained seal must let a frame land behind the marker");
    assert!(
        violation.message.contains("behind the marker"),
        "unexpected violation: {violation}"
    );
}

// ---------------------------------------------------------------------------
// Replication shipping handoff (crates/replica)
// ---------------------------------------------------------------------------

#[test]
fn shipping_handoff_passes_exhaustively() {
    let report = Model::new()
        .preemption_bound(2)
        .check(|| shipping_scenario(ShipVariant::Correct));
    assert!(report.complete);
    assert!(report.schedules > 10, "the scenario must actually branch");
}

#[test]
fn shipping_ack_before_apply_releases_retention_too_early() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| shipping_scenario(ShipVariant::AckBeforeApply))
        .expect_err("a probe racing the early ack must catch it");
    assert!(
        violation
            .message
            .contains("epoch acked before the standby applied it"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn shipping_truncation_that_ignores_acks_strands_a_lagging_standby() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| shipping_scenario(ShipVariant::TruncateIgnoresAcks))
        .expect_err("an unclamped truncation must be caught while acks lag");
    assert!(
        violation
            .message
            .contains("truncated a sealed segment the standby has not acknowledged"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn shipping_promote_without_drain_shadows_sealed_history() {
    let violation = Model::new()
        .preemption_bound(2)
        .try_check(|| shipping_scenario(ShipVariant::PromoteWithoutDrain))
        .expect_err("an undrained promote must leave shipped epochs unapplied");
    assert!(
        violation
            .message
            .contains("promote left shipped epochs unapplied"),
        "unexpected violation: {violation}"
    );
}
