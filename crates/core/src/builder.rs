//! The unified session builder: one entry point for every session mode.
//!
//! [`Engine::session_builder`] replaces the previous fan of ad-hoc entry
//! points (`Engine::session`, `Engine::durable_session`, `Engine::recover`)
//! with a single [`SessionBuilder`] that composes orthogonal options —
//! [`SessionBuilder::durable`], [`SessionBuilder::recover`],
//! [`SessionBuilder::pipeline_depth`],
//! [`SessionBuilder::adaptive_punctuation`], [`SessionBuilder::label`] —
//! and yields one [`Session`] type.  `Engine::run` / `Engine::run_offline`
//! remain as thin wrappers for the differential baseline.
//!
//! ```
//! use std::sync::Arc;
//! use tstream_core::prelude::*;
//! # struct Noop;
//! # impl Application for Noop {
//! #     type Payload = u64;
//! #     fn name(&self) -> &'static str { "noop" }
//! #     fn read_write_set(&self, key: &u64) -> ReadWriteSet {
//! #         ReadWriteSet::new().write(StateRef::new(0, *key))
//! #     }
//! #     fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
//! #         txn.read_modify(0, *key, None, |ctx| Ok(ctx.current.clone()));
//! #     }
//! #     fn post_process(&self, _k: &u64, _b: &EventBlotter) -> PostAction {
//! #         PostAction::Emit
//! #     }
//! # }
//! # let table = TableBuilder::new("t")
//! #     .extend((0..4u64).map(|k| (k, Value::Long(0))))
//! #     .build()
//! #     .unwrap();
//! # let store = StateStore::new(vec![table]).unwrap();
//! let engine = Engine::new(EngineConfig::with_executors(2).punctuation(32));
//! let mut session = engine
//!     .session_builder(&Arc::new(Noop), &store, &Scheme::TStream)
//!     .label("reader-7")
//!     .pipeline_depth(2)
//!     .open()
//!     .unwrap();
//! session.push(3).unwrap();
//! let report = session.report().unwrap();
//! assert_eq!(report.events, 1);
//! ```

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use tstream_recovery::{
    read_segment, DurableLog, DurableMeta, RecoveryCoordinator, RecoveryOptions, WalPayload,
};
use tstream_state::{StateError, StateResult, StateStore};
use tstream_txn::Application;

use crate::adaptive::AdaptiveConfig;
use crate::engine::{Durability, Engine, Scheme};
use crate::session::{DurableParts, Session, SessionOptions};

/// Durability directories with a live durable session anywhere in this
/// process.  Two concurrent sessions over one directory would interleave
/// WAL appends and desynchronize epochs (the second open even truncates and
/// heals the first session's active tail), so `open_durable` registers the
/// canonicalized directory here and rejects a second open; the guard is
/// released when the session drops.  (Before the session builder this was
/// enforced incidentally — and only per engine — by the exclusive run
/// lease.)
fn open_durable_dirs() -> &'static Mutex<HashSet<PathBuf>> {
    static DIRS: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    DIRS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// RAII registration of one durability directory; carried by the session's
/// `DurableParts` so the directory frees exactly when the session ends.
#[derive(Debug)]
pub(crate) struct DurableDirGuard(PathBuf);

impl DurableDirGuard {
    pub(crate) fn acquire(dir: &Path) -> StateResult<Self> {
        // The coordinator has not run yet, so the directory may not exist;
        // create it first so canonicalization (symlink/relative-path
        // normalization) sees the real path.
        std::fs::create_dir_all(dir)?;
        let canonical = dir.canonicalize()?;
        let mut open = open_durable_dirs().lock();
        if !open.insert(canonical.clone()) {
            return Err(StateError::InvalidDefinition(format!(
                "durability directory {} already has a live durable session in this process; \
                 close it before opening another",
                canonical.display()
            )));
        }
        Ok(DurableDirGuard(canonical))
    }
}

impl Drop for DurableDirGuard {
    fn drop(&mut self) {
        let mut open = open_durable_dirs().lock();
        open.remove(&self.0);
    }
}

/// Type-erased WAL hooks, instantiated where the `P: WalPayload` bound is
/// in scope (inside [`SessionBuilder::durable`]) so neither the builder nor
/// the session needs the bound on its type.
#[derive(Clone, Copy)]
struct WalHooks<P> {
    append: fn(&DurableLog, &P) -> StateResult<()>,
    read: fn(&Path) -> StateResult<Vec<P>>,
}

/// The durable half of a builder: where the log lives plus the payload
/// codec hooks.
#[derive(Clone)]
struct DurableRequest<P> {
    dir: PathBuf,
    hooks: WalHooks<P>,
}

/// Composable configuration of one [`Session`], created by
/// [`Engine::session_builder`].
///
/// Every option is orthogonal; [`SessionBuilder::open`] validates the
/// combination and opens the session.  The builder borrows the engine, so
/// N builders may be opened concurrently — their sessions multiplex over
/// the engine's shared executor pool.
#[derive(Clone)]
pub struct SessionBuilder<'e, A: Application> {
    engine: &'e Engine,
    app: Arc<A>,
    store: Arc<StateStore>,
    scheme: Scheme,
    label: Option<String>,
    pipeline_depth: Option<usize>,
    adaptive: Option<AdaptiveConfig>,
    durable: Option<DurableRequest<A::Payload>>,
    recover: bool,
}

impl<A: Application> std::fmt::Debug for SessionBuilder<'_, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("app", &self.app.name())
            .field("scheme", &self.scheme)
            .field("label", &self.label)
            .field("pipeline_depth", &self.pipeline_depth)
            .field("adaptive", &self.adaptive.is_some())
            .field("durable", &self.durable.as_ref().map(|d| d.dir.clone()))
            .field("recover", &self.recover)
            .finish()
    }
}

impl<'e, A: Application> SessionBuilder<'e, A> {
    pub(crate) fn new(
        engine: &'e Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> Self {
        SessionBuilder {
            engine,
            app: app.clone(),
            store: store.clone(),
            scheme: scheme.clone(),
            label: None,
            pipeline_depth: None,
            adaptive: None,
            durable: None,
            recover: false,
        }
    }

    /// Attach a label to the session: it is stamped into the
    /// [`crate::RunReport`] (`label` field) so multi-session output stays
    /// attributable.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Override the session's staging-queue depth: how many completed
    /// punctuation batches may wait between this session's ingestion and
    /// the shared executor pool before `push` blocks (per-session
    /// backpressure; clamped to ≥ 1).  Defaults to the engine's
    /// [`crate::EngineConfig::pipeline_depth`].
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = Some(depth.max(1));
        self
    }

    /// Enable adaptive punctuation with the default
    /// [`AdaptiveConfig`]: after every batch the session feeds the measured
    /// window throughput (and p99, when a latency bound is configured) into
    /// an [`crate::AdaptiveIntervalController`] and retunes the punctuation
    /// interval of the *next* batch.  The search starts from the engine's
    /// configured interval.
    ///
    /// Adaptive sessions trade the fixed batch boundaries of a plain
    /// session for throughput: results remain timestamp-order equivalent,
    /// but batch sizes (and hence run timing) become load-dependent.
    /// Incompatible with [`SessionBuilder::durable`], whose WAL pins one
    /// punctuation interval per directory.
    pub fn adaptive_punctuation(self) -> Self {
        self.adaptive_punctuation_with(AdaptiveConfig::default())
    }

    /// [`SessionBuilder::adaptive_punctuation`] with explicit controller
    /// bounds / steps / latency bound.
    pub fn adaptive_punctuation_with(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Make the session **durable** over `dir`: every pushed event is
    /// write-ahead logged before routing, the WAL segment seals before a
    /// completed batch dispatches, and the executor leader writes
    /// epoch-stamped checkpoints on the engine's
    /// [`crate::EngineConfig::checkpoint_every`] cadence (fsync per
    /// [`crate::EngineConfig::fsync`]).
    ///
    /// On a fresh directory this starts an empty log; on a directory with
    /// existing durability state it restores the newest checkpoint, replays
    /// the surviving WAL segments and resumes — the same semantics as
    /// [`SessionBuilder::recover`], so one entry point serves both the
    /// `--durable` and `--recover` paths.  The store must be freshly built
    /// with the run's schema (and shard count); a recovered snapshot
    /// overwrites every committed value.
    ///
    /// A directory holds at most **one** live durable session per process:
    /// while one is open, [`SessionBuilder::open`] over the same directory
    /// fails with [`StateError::InvalidDefinition`] — concurrent sessions
    /// must use disjoint directories, just like disjoint stores.
    pub fn durable(mut self, dir: impl AsRef<Path>) -> Self
    where
        A::Payload: WalPayload,
    {
        self.durable = Some(DurableRequest {
            dir: dir.as_ref().to_path_buf(),
            hooks: WalHooks {
                append: |log, payload| log.append(payload),
                read: |path| read_segment::<A::Payload>(path).map(|decoded| decoded.events),
            },
        });
        self
    }

    /// Declare that this open **recovers** a crashed durable run: restores
    /// the newest epoch-stamped checkpoint into the store, replays the
    /// surviving WAL segments through the normal streaming path (dual-mode
    /// scheduling unchanged), feeds the unsealed tail back into the forming
    /// batch, and resumes live ingestion.
    ///
    /// Recovery is idempotent — crash during recovery and reopening
    /// converges — and exactly-once: the recovered final state and the
    /// cumulative counts of [`Session::report`] are byte-identical to an
    /// uninterrupted run over the same input.
    ///
    /// This is documentation-by-construction over
    /// [`SessionBuilder::durable`] (which already recovers whatever the
    /// directory holds); [`SessionBuilder::open`] rejects `recover()`
    /// without a durable directory.
    pub fn recover(mut self) -> Self {
        self.recover = true;
        self
    }

    /// Validate the option combination and open the [`Session`].
    ///
    /// # Errors
    ///
    /// * [`StateError::InvalidDefinition`] for contradictory options:
    ///   `recover()` without `durable(dir)`, or `adaptive_punctuation()`
    ///   combined with `durable(dir)` (the WAL pins one punctuation
    ///   interval per directory);
    /// * any durability error surfaced while opening, restoring or
    ///   replaying the directory.  Plain sessions cannot fail to open.
    pub fn open(self) -> StateResult<Session<'e, A>> {
        if self.recover && self.durable.is_none() {
            return Err(StateError::InvalidDefinition(
                "SessionBuilder::recover() requires a durable directory — call .durable(dir) too"
                    .into(),
            ));
        }
        if self.adaptive.is_some() && self.durable.is_some() {
            return Err(StateError::InvalidDefinition(
                "adaptive punctuation cannot be combined with a durable session: the WAL pins \
                 one punctuation interval per directory"
                    .into(),
            ));
        }
        let options = SessionOptions {
            label: self.label,
            staging_depth: self.pipeline_depth,
            adaptive: self.adaptive,
        };
        match self.durable {
            None => Ok(Session::open(
                self.engine,
                &self.app,
                &self.store,
                &self.scheme,
                self.engine.legacy_durability(),
                None,
                options,
            )),
            Some(request) => open_durable(
                self.engine,
                &request.dir,
                &self.app,
                &self.store,
                &self.scheme,
                request.hooks,
                options,
            ),
        }
    }
}

/// Open (or recover) a durable session: restore the newest checkpoint,
/// replay surviving sealed segments through the normal session path — one
/// segment, one batch, so batch formation and routing are identical to the
/// original run — feed the unsealed tail back into the forming batch, and
/// return the live session.
fn open_durable<'e, A: Application>(
    engine: &'e Engine,
    dir: &Path,
    app: &Arc<A>,
    store: &Arc<StateStore>,
    scheme: &Scheme,
    hooks: WalHooks<A::Payload>,
    options: SessionOptions,
) -> StateResult<Session<'e, A>> {
    // Claim the directory before the coordinator touches it: a second
    // durable open would truncate/heal the live session's active tail.
    let dir_guard = DurableDirGuard::acquire(dir)?;
    let config = engine.config();
    let recovered = RecoveryCoordinator::new(dir)
        .options(RecoveryOptions {
            fsync: config.fsync,
            checkpoint_every: config.checkpoint_every.max(1) as u64,
            retain: 2,
            // Epoch alignment assumes one segment = one punctuation batch,
            // so the interval is pinned to the directory.
            meta: Some(DurableMeta {
                punctuation_interval: config.punctuation_interval.max(1) as u64,
            }),
            group: config.group_commit(),
        })
        .open()?;
    // Restore the checkpointed state before the session resets the store's
    // synchronisation state and replay re-executes on top.
    if let Some(snapshot) = &recovered.snapshot {
        snapshot.restore(store)?;
    }
    let mut log = recovered.log;
    // Full group-commit windows flush on the engine's spawn-once WAL-writer
    // thread instead of the ingestion thread.
    log.attach_group_executor(Arc::new(engine.pool().wal_writer(engine.obs())));
    let log = Arc::new(log);
    let mut session = Session::open(
        engine,
        app,
        store,
        scheme,
        Durability::Wal(log.clone()),
        Some(DurableParts {
            log,
            append: hooks.append,
            _dir_guard: dir_guard,
        }),
        options,
    );

    // Replay surviving sealed segments through the normal path.  Every
    // sealed segment was cut at a punctuation (or an explicit flush), so it
    // replays as exactly one batch — forcing the partial dispatch at each
    // segment end reproduces the original batch boundaries, and with them
    // routing and results.  Nothing is re-appended to the WAL: these events
    // are already durable.  Replay mode excludes these batches from latency
    // sampling and adaptive observations: their arrival instants are
    // re-ingestion times, not original arrivals.
    session.set_replay(true);
    for info in &recovered.sealed_segments {
        for payload in (hooks.read)(&info.path)? {
            if let Some(batch) = session.ingest(payload) {
                session.dispatch_now(batch);
            }
        }
        if let Some(batch) = session.take_partial() {
            session.dispatch_now(batch);
        }
    }
    // The unsealed tail re-enters the forming batch; the log keeps
    // appending to that very segment, so alignment is preserved.  If the
    // crash hit between batch completion and seal, the tail already holds a
    // full batch: it seals now, then dispatches.  Tail events keep the
    // replay taint sticky: the mixed batch that live pushes later complete
    // is excluded from sampling as a whole.
    if let Some(info) = &recovered.pending_segment {
        for payload in (hooks.read)(&info.path)? {
            session.ingest_logged(payload)?;
        }
    }
    session.set_replay(false);
    Ok(session)
}

impl Engine {
    /// Start building a session over `app` × `store` × `scheme`: the single
    /// entry point for plain, durable, recovering, adaptive and labelled
    /// sessions (see [`SessionBuilder`]).
    ///
    /// Sessions of one engine run **concurrently** over its shared executor
    /// pool: the runtime's scheduler interleaves their punctuation batches
    /// fairly (round-robin at batch granularity) with per-session
    /// backpressure, and opening or closing sessions never spawns threads.
    pub fn session_builder<'e, A: Application>(
        &'e self,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> SessionBuilder<'e, A> {
        SessionBuilder::new(self, app, store, scheme)
    }
}
