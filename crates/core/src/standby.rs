//! Standby replay and point-in-time restore: the engine-side half of
//! hot-standby replication.
//!
//! A standby node receives sealed WAL segments shipped from a primary (see
//! the `tstream-replica` crate for the transport) and must replay each one
//! through the *normal* session path — batch formation, routing and
//! execution identical to the primary — so that after applying epoch `e`
//! its store is byte-identical to the primary's store at that punctuation
//! boundary.  The session internals that make this possible
//! (`Session::ingest`, `dispatch_now`, `set_replay`) are crate-private, so
//! this module exposes the two public entry points the replica crate
//! builds on:
//!
//! * [`StandbySession`] — a continuously-replaying session: one
//!   [`StandbySession::apply_segment`] call per shipped epoch keeps the
//!   standby at most one epoch behind, and [`StandbySession::promote`]
//!   turns it into a live, durable [`Session`] positioned at the next
//!   epoch (takeover);
//! * [`restore_to_epoch`] — offline point-in-time recovery: rebuild the
//!   exact state after epoch `e` from a durability directory (newest
//!   checkpoint at or before `e`, then replay through exactly `e`).

use std::path::Path;
use std::sync::Arc;

use tstream_recovery::{
    read_segment, DurableMeta, RecoveryCoordinator, RecoveryOptions, WalPayload,
};
use tstream_state::{StateError, StateResult, StateStore};
use tstream_txn::Application;

use crate::builder::DurableDirGuard;
use crate::engine::{Durability, Engine, RunReport, Scheme};
use crate::session::{DurableParts, Session, SessionOptions};

/// A continuously-replaying standby session over an [`Engine`].
///
/// The standby applies shipped segments strictly in epoch order — one
/// segment is one punctuation batch, so [`StandbySession::apply_segment`]
/// forces the same batch boundary the primary cut, and the stores converge
/// at every epoch.  [`StandbySession::state_root`] exposes the
/// order-independent digest used for divergence detection, and
/// [`StandbySession::promote`] performs takeover.
pub struct StandbySession<'e, A: Application> {
    engine: &'e Engine,
    app: Arc<A>,
    store: Arc<StateStore>,
    scheme: Scheme,
    session: Option<Session<'e, A>>,
    next_epoch: u64,
}

impl<'e, A: Application> std::fmt::Debug for StandbySession<'e, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandbySession")
            .field("app", &self.app.name())
            .field("scheme", &self.scheme)
            .field("next_epoch", &self.next_epoch)
            .finish()
    }
}

impl<'e, A: Application> StandbySession<'e, A> {
    /// Open a standby session over `app` × `store` × `scheme`, expecting
    /// the first shipped segment to carry epoch 0.  Use
    /// [`StandbySession::open_at`] when the standby starts from a restored
    /// checkpoint instead of an empty history.
    pub fn open(
        engine: &'e Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> Self {
        Self::open_at(engine, app, store, scheme, 0)
    }

    /// Open a standby session whose first expected segment is
    /// `next_epoch`.  The caller must have restored the checkpoint
    /// covering epochs `< next_epoch` into `store` first.
    pub fn open_at(
        engine: &'e Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
        next_epoch: u64,
    ) -> Self {
        let mut session = Session::open(
            engine,
            app,
            store,
            scheme,
            Durability::None,
            None,
            SessionOptions::default(),
        );
        // Shipped segments are replays of the primary's batches: their
        // arrival instants here are ship times, not original arrivals, so
        // they are excluded from latency sampling and adaptive tuning.
        session.set_replay(true);
        StandbySession {
            engine,
            app: app.clone(),
            store: store.clone(),
            scheme: scheme.clone(),
            session: Some(session),
            next_epoch,
        }
    }

    /// The epoch the next [`StandbySession::apply_segment`] call must
    /// carry.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Apply one shipped sealed segment: the events of epoch `epoch`, in
    /// their original order.  The whole segment executes as exactly one
    /// batch — the same boundary the primary's punctuation cut — and the
    /// call returns only after the batch is fully executed, so the store
    /// reflects epoch `epoch` on return.
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidDefinition`] when `epoch` is not the expected
    /// next epoch (a gap or replayed duplicate in the shipping stream).
    pub fn apply_segment(&mut self, epoch: u64, events: Vec<A::Payload>) -> StateResult<()> {
        if epoch != self.next_epoch {
            return Err(StateError::InvalidDefinition(format!(
                "standby expected segment for epoch {} but was handed epoch {}",
                self.next_epoch, epoch
            )));
        }
        let session = self
            .session
            .as_mut()
            .expect("standby session is live until promote");
        for payload in events {
            if let Some(batch) = session.ingest(payload) {
                session.dispatch_now(batch);
            }
        }
        if let Some(batch) = session.take_partial() {
            session.dispatch_now(batch);
        }
        session.drain();
        self.next_epoch += 1;
        Ok(())
    }

    /// The deterministic state-root digest of the standby's store — the
    /// same function the primary records per epoch
    /// ([`tstream_state::state_root`]), computable here because
    /// [`StandbySession::apply_segment`] returns only at a quiescent
    /// punctuation boundary.
    pub fn state_root(&self) -> u64 {
        tstream_state::state_root(&self.store)
    }

    /// Take over: close the replay session and reopen this node as the
    /// **primary** — a live durable [`Session`] over the same store and
    /// engine, write-ahead logging into `dir` starting at the epoch after
    /// the last applied segment.
    ///
    /// `dir` must be the standby's mirrored durability directory (the
    /// replica transport writes shipped segments and checkpoints there):
    /// takeover validates that the directory's sealed history ends exactly
    /// where replay stopped, refuses an unsealed tail, and positions the
    /// WAL at [`StandbySession::next_epoch`].  The returned session's
    /// [`Session::report`] counts are cumulative across the replayed
    /// history, identical to an uninterrupted primary.
    ///
    /// # Errors
    ///
    /// Any durability error opening `dir`, plus
    /// [`StateError::InvalidDefinition`] when the directory's sealed
    /// history does not end at the replayed epoch (segments were shipped
    /// but not applied, or vice versa).
    pub fn promote(mut self, dir: impl AsRef<Path>) -> StateResult<Session<'e, A>>
    where
        A::Payload: WalPayload,
    {
        let session = self
            .session
            .take()
            .expect("standby session is live until promote");
        // `report` flushes (nothing is pending: every applied segment was
        // fully drained) and yields the cumulative counts of the replayed
        // history — they become the promoted log's base, so the new
        // primary's reports stay cumulative.
        let report = session.report()?;
        let base = tstream_recovery::RecoveredProgress {
            events: report.events,
            committed: report.committed,
            rejected: report.rejected,
        };
        let dir = dir.as_ref();
        let dir_guard = DurableDirGuard::acquire(dir)?;
        let config = self.engine.config();
        let mut log = RecoveryCoordinator::new(dir)
            .options(RecoveryOptions {
                fsync: config.fsync,
                checkpoint_every: config.checkpoint_every.max(1) as u64,
                retain: 2,
                meta: Some(DurableMeta {
                    punctuation_interval: config.punctuation_interval.max(1) as u64,
                }),
                group: config.group_commit(),
            })
            .open_for_takeover(base)?;
        if log.epoch_base() != self.next_epoch {
            return Err(StateError::InvalidDefinition(format!(
                "takeover directory's sealed history ends at epoch {} but the standby \
                 replayed through epoch {}; apply the remaining shipped segments before \
                 promoting",
                log.epoch_base(),
                self.next_epoch
            )));
        }
        log.attach_group_executor(Arc::new(self.engine.pool().wal_writer(self.engine.obs())));
        let log = Arc::new(log);
        Ok(Session::open(
            self.engine,
            &self.app,
            &self.store,
            &self.scheme,
            Durability::Wal(log.clone()),
            Some(DurableParts {
                log,
                append: |log, payload| log.append(payload),
                _dir_guard: dir_guard,
            }),
            SessionOptions::default(),
        ))
    }
}

/// Point-in-time recovery: rebuild in `store` the exact committed state
/// after epoch `epoch` from the durability directory `dir`, and return the
/// cumulative [`RunReport`] of the history through that epoch.
///
/// The directory is read-only for this call — the newest checkpoint at or
/// before `epoch` restores into the store and the sealed segments covering
/// the remaining range replay through the normal session path, so many
/// historical epochs can be materialized from one directory (each into its
/// own fresh store).  Retention is the caller's contract: epochs whose
/// segments were truncated after checkpointing are only reachable through
/// a checkpoint; pin retention on the primary
/// ([`tstream_recovery::DurableLog::pin_retention`]) to keep the full
/// range replayable.
///
/// # Errors
///
/// * [`StateError::InvalidDefinition`] when `epoch` is not fully sealed in
///   the directory (it exists only as the unsealed tail, or the history
///   ends earlier);
/// * [`StateError::Corrupted`] when the segment range has a gap (history
///   truncated without a retention pin);
/// * any I/O or decode error reading the directory.
pub fn restore_to_epoch<A: Application>(
    engine: &Engine,
    app: &Arc<A>,
    store: &Arc<StateStore>,
    scheme: &Scheme,
    dir: impl AsRef<Path>,
    epoch: u64,
) -> StateResult<RunReport>
where
    A::Payload: WalPayload,
{
    let pit = RecoveryCoordinator::new(dir.as_ref()).recover_to(epoch)?;
    // Restore before opening the session: opening resets the store's
    // synchronisation state and replay re-executes on top.
    if let Some(snapshot) = &pit.snapshot {
        snapshot.restore(store)?;
    }
    let mut session = Session::open(
        engine,
        app,
        store,
        scheme,
        Durability::None,
        None,
        SessionOptions::default(),
    );
    session.set_replay(true);
    for info in &pit.sealed_segments {
        for payload in read_segment::<A::Payload>(&info.path)?.events {
            if let Some(batch) = session.ingest(payload) {
                session.dispatch_now(batch);
            }
        }
        if let Some(batch) = session.take_partial() {
            session.dispatch_now(batch);
        }
    }
    session.set_replay(false);
    let mut report = session.report()?;
    report.events += pit.base.events;
    report.committed += pit.base.committed;
    report.rejected += pit.base.rejected;
    Ok(report)
}
