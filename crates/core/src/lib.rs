//! # tstream-core
//!
//! A Rust reproduction of **TStream** (*Towards Concurrent Stateful Stream
//! Processing on Multicore Processors*, ICDE 2020): a data stream processing
//! engine that supports concurrent access to shared mutable application state
//! by modelling the state accesses of each input event as a *state
//! transaction* and guaranteeing a schedule conflict-equivalent to the event
//! timestamp order.
//!
//! The crate implements the paper's two contributions:
//!
//! * **Dual-mode scheduling** ([`engine`]) — executors postpone the state
//!   access step of every event during *compute mode* and collaboratively
//!   process the postponed transactions in *state-access mode* at every
//!   punctuation;
//! * **Dynamic restructuring execution** ([`chains`], [`restructure`]) — the
//!   postponed batch is decomposed into per-state, timestamp-ordered
//!   *operation chains* that are evaluated in parallel without lock
//!   contention, with temporary multi-versioning for cross-chain data
//!   dependencies.
//!
//! The baseline schemes the paper compares against (No-Lock, LOCK, MVLK, PAT)
//! live in `tstream-txn` and are driven by the same [`engine::Engine`], so a
//! single [`engine::RunReport`] interface covers every figure of the paper.
//!
//! Execution is a three-stage pipeline: the stream crate's online
//! `BatchBuilder` forms punctuation batches at ingestion time, a persistent
//! [`runtime::ExecutorPool`] (threads spawned once per engine) executes them
//! batch by batch, and per-executor sinks aggregate the report.  Continuous
//! ingestion goes through one [`session::Session`] type built with
//! [`engine::Engine::session_builder`] → [`builder::SessionBuilder`]
//! (`push` / `flush` / `report`; `.durable(dir)`, `.recover()`,
//! `.adaptive_punctuation()`, `.pipeline_depth(n)` and `.label(..)` compose
//! as builder options).  Sessions of one engine run **concurrently**: the
//! pool's scheduler interleaves their punctuation batches round-robin with
//! per-session backpressure.  `Engine::run` streams a pre-collected input
//! through a session, and `Engine::run_offline` keeps the seed's one-shot
//! mode as a differential baseline.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use tstream_core::prelude::*;
//!
//! // A tiny application: every event increments one counter.
//! struct Counter;
//! impl Application for Counter {
//!     type Payload = u64;
//!     fn name(&self) -> &'static str { "counter" }
//!     fn read_write_set(&self, key: &u64) -> ReadWriteSet {
//!         ReadWriteSet::new().write(StateRef::new(0, *key))
//!     }
//!     fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
//!         txn.read_modify(0, *key, None, |ctx| {
//!             Ok(Value::Long(ctx.current.as_long()? + 1))
//!         });
//!     }
//!     fn post_process(&self, _key: &u64, _blotter: &EventBlotter) -> PostAction {
//!         PostAction::Emit
//!     }
//! }
//!
//! let table = TableBuilder::new("counters")
//!     .extend((0..16u64).map(|k| (k, Value::Long(0))))
//!     .build()
//!     .unwrap();
//! let store = StateStore::new(vec![table]).unwrap();
//! let engine = Engine::new(EngineConfig::with_executors(2).punctuation(64));
//! let report = engine.run(
//!     &Arc::new(Counter),
//!     &store,
//!     (0..256u64).map(|i| i % 16).collect(),
//!     &Scheme::TStream,
//! );
//! assert_eq!(report.committed, 256);
//! ```

#![deny(missing_docs)]

pub mod adaptive;
pub mod builder;
pub mod chains;
pub mod config;
pub mod durable;
pub mod engine;
pub mod restructure;
pub mod runtime;
pub mod session;
pub mod standby;
pub mod walwriter;

pub use adaptive::{AdaptiveConfig, AdaptiveIntervalController, IntervalObservation};
pub use builder::SessionBuilder;
pub use chains::{ChainPool, ChainPoolSet, OperationChain, ProcessingAssignment};
pub use config::{ChainPlacement, DependencyResolution, EngineConfig, TStreamConfig};
#[allow(deprecated)]
pub use durable::DurableSession;
pub use engine::{Engine, RunReport, Scheme};
pub use restructure::{BatchAbortLog, ChainStats, ReplayStats, RestructureContext, UndoRecord};
pub use runtime::ExecutorPool;
pub use session::Session;
#[allow(deprecated)]
pub use session::StreamSession;
pub use standby::{restore_to_epoch, StandbySession};
pub use tstream_obs::{MetricsSnapshot, ObsConfig, TraceEvent, TraceKind};
pub use tstream_recovery::{FsyncPolicy, WalPayload};
pub use tstream_stream::partition::EventRouting;

/// Everything a user needs to define and run a concurrent stateful stream
/// application.
pub mod prelude {
    pub use crate::builder::SessionBuilder;
    pub use crate::config::{ChainPlacement, DependencyResolution, EngineConfig, TStreamConfig};
    #[allow(deprecated)]
    pub use crate::durable::DurableSession;
    pub use crate::engine::{Engine, RunReport, Scheme};
    pub use crate::session::Session;
    #[allow(deprecated)]
    pub use crate::session::StreamSession;
    pub use tstream_obs::{MetricsSnapshot, ObsConfig, TraceEvent, TraceKind};
    pub use tstream_recovery::{FsyncPolicy, RecoveryCoordinator, WalPayload};
    pub use tstream_state::{
        Checkpoint, CheckpointManifest, Checkpointer, ShardId, ShardRouter, StateStore,
        StoreSnapshot, Table, TableBuilder, Value,
    };
    pub use tstream_stream::operator::{AccessMode, ReadWriteSet, StateRef};
    pub use tstream_stream::partition::EventRouting;
    pub use tstream_txn::{
        lock_based::LockScheme, mvlk::MvlkScheme, nolock::NoLockScheme, pat::PatScheme,
    };
    pub use tstream_txn::{
        Application, EventBlotter, NumaModel, OpCtx, PostAction, TxnBuilder, TxnOutcome,
    };
}
