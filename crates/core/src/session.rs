//! Streaming sessions: continuous ingestion over the shared runtime.
//!
//! A [`Session`] is the engine's one streaming handle, built with
//! [`Engine::session_builder`].  It connects the three pipeline stages:
//!
//! * **ingestion** — [`Session::push`] stamps the payload at arrival time
//!   and feeds the engine's online
//!   [`tstream_stream::source::BatchBuilder`]; in durable mode the payload
//!   is appended to the write-ahead log first;
//! * **execution** — every completed punctuation batch is staged with the
//!   pool's session scheduler ([`crate::runtime::ExecutorPool`]) and
//!   injected round-robin with the batches of every other open session, so
//!   batch *k + 1* forms while batch *k* executes and N sessions interleave
//!   at punctuation granularity; a full staging queue blocks only this
//!   session's `push` (per-session backpressure);
//! * **sink** — [`Session::report`] flushes the trailing partial batch,
//!   waits for the pool to drain this session's work, and aggregates the
//!   same [`RunReport`] an offline run produces.
//!
//! Sessions of one engine run **concurrently**: each has its own epoch
//! counters, barrier, accumulator slots and report, and the scheduler keeps
//! their batches from interleaving *within* a batch.  Two caveats are the
//! caller's to uphold, exactly as with two independent engines: concurrent
//! sessions must not share one [`StateStore`] (each session resets and owns
//! its store's synchronisation state) and must not share one eager-scheme
//! instance (scheme counters are per run).  Durability directories are
//! guarded for them: a second durable open over a directory with a live
//! session in this process is rejected.  Results are deterministic —
//! identical inputs produce the same committed / rejected counts and final
//! store state as [`Engine::run_offline`], which the `session_runtime` and
//! `concurrent_sessions` differential suites pin down.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use tstream_obs::{clock, Stopwatch, TraceKind};
use tstream_recovery::DurableLog;
use tstream_state::{StateResult, StateStore};
use tstream_stream::source::BatchBuilder;
use tstream_txn::{Application, TxnDescriptor};

use crate::adaptive::{AdaptiveConfig, AdaptiveIntervalController, IntervalObservation};
use crate::engine::{
    ConflictScratch, Durability, Engine, EngineBatch, ExecutorState, RunContext, RunReport, Scheme,
};
use crate::runtime::{ExecutorPool, SessionToken};

/// Payload of a panic caught on a pool worker.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Tracks finished per-executor batch jobs — and the first panic any of
/// them raised — so `flush` can wait for the pool to drain this session's
/// work and re-raise the failure on the caller's thread.
#[derive(Default)]
struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Default)]
struct CompletionState {
    done: u64,
    panic: Option<PanicPayload>,
}

impl Completion {
    fn mark_one(&self) {
        let mut state = self.state.lock();
        state.done += 1;
        drop(state);
        self.cv.notify_all();
    }

    /// Jobs finished so far (sampled for the staged-depth gauge).
    fn done(&self) -> u64 {
        self.state.lock().done
    }

    /// Record the first panic (later ones — typically the poisoned-barrier
    /// panics of the sibling executors — are dropped as secondary).
    fn record_panic(&self, payload: PanicPayload) {
        let mut state = self.state.lock();
        state.panic.get_or_insert(payload);
    }

    /// Wait until `target` jobs finished; returns the recorded root-cause
    /// panic, if any, for the caller to re-raise.
    fn wait_for(&self, target: u64) -> Option<PanicPayload> {
        let mut state = self.state.lock();
        while state.done < target {
            self.cv.wait(&mut state);
        }
        state.panic.take()
    }
}

/// State shared between the session handle and the jobs it dispatched:
/// the run context plus one accumulator slot per executor.  Jobs of one
/// executor run strictly in order on its pool thread, so each slot's mutex
/// is uncontended — it exists to move the state into `'static` jobs, not to
/// arbitrate access.
struct SessionShared<A: Application> {
    ctx: RunContext<A>,
    slots: Vec<Mutex<ExecutorState>>,
    completion: Completion,
}

/// The write-ahead-log half of a durable session.  The `append` hook is a
/// plain function pointer instantiated by
/// [`crate::builder::SessionBuilder::durable`], where the
/// `A::Payload: WalPayload` bound is in scope — the session itself stays
/// bound-free.
pub(crate) struct DurableParts<P> {
    pub(crate) log: Arc<DurableLog>,
    pub(crate) append: fn(&DurableLog, &P) -> StateResult<()>,
    /// Claims the durability directory process-wide for this session's
    /// lifetime — two live durable sessions over one directory would
    /// interleave WAL appends and desynchronize epochs.
    pub(crate) _dir_guard: crate::builder::DurableDirGuard,
}

/// Live state of adaptive punctuation tuning
/// ([`crate::builder::SessionBuilder::adaptive_punctuation`]): the
/// hill-climbing controller plus the measurement window it observes.
struct AdaptiveRuntime {
    controller: AdaptiveIntervalController,
    /// Whether observations need a real p99 (a latency bound is set);
    /// without one the percentile scan is skipped entirely.
    needs_latency: bool,
    window_started: Option<Instant>,
    window_events: u64,
}

/// Options threaded from the builder into [`Session::open`].
#[derive(Debug, Clone, Default)]
pub(crate) struct SessionOptions {
    pub(crate) label: Option<String>,
    /// Staging-queue depth override (defaults to the engine's
    /// `pipeline_depth`).
    pub(crate) staging_depth: Option<usize>,
    pub(crate) adaptive: Option<AdaptiveConfig>,
}

/// A continuous-ingestion handle onto an [`Engine`], created by
/// [`Engine::session_builder`].
///
/// One type serves every mode: plain streaming, durable (write-ahead
/// logged) and recovered sessions differ only in how the builder opened
/// them.  [`Session::push`] is fallible for that reason — in plain mode it
/// never returns an error.
///
/// ```
/// use std::sync::Arc;
/// use tstream_core::prelude::*;
///
/// struct Count;
/// impl Application for Count {
///     type Payload = u64;
///     fn name(&self) -> &'static str { "count" }
///     fn read_write_set(&self, key: &u64) -> ReadWriteSet {
///         ReadWriteSet::new().write(StateRef::new(0, *key))
///     }
///     fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
///         txn.read_modify(0, *key, None, |ctx| {
///             Ok(Value::Long(ctx.current.as_long()? + 1))
///         });
///     }
///     fn post_process(&self, _key: &u64, _b: &EventBlotter) -> PostAction {
///         PostAction::Emit
///     }
/// }
///
/// let table = TableBuilder::new("counters")
///     .extend((0..8u64).map(|k| (k, Value::Long(0))))
///     .build()
///     .unwrap();
/// let store = StateStore::new(vec![table]).unwrap();
/// let engine = Engine::new(EngineConfig::with_executors(2).punctuation(16));
/// let mut session = engine
///     .session_builder(&Arc::new(Count), &store, &Scheme::TStream)
///     .label("quickstart")
///     .open()
///     .unwrap();
/// for i in 0..64u64 {
///     session.push(i % 8).unwrap();
/// }
/// session.flush().unwrap(); // everything pushed so far is executed
/// let report = session.report().unwrap();
/// assert_eq!(report.committed, 64);
/// assert_eq!(report.label.as_deref(), Some("quickstart"));
/// ```
pub struct Session<'e, A: Application> {
    pool: &'e ExecutorPool,
    token: SessionToken,
    shared: Arc<SessionShared<A>>,
    builder: BatchBuilder<A::Payload, TxnDescriptor>,
    conflict_scratch: ConflictScratch,
    started: Option<Instant>,
    pushed: u64,
    jobs_dispatched: u64,
    durable: Option<DurableParts<A::Payload>>,
    adaptive: Option<AdaptiveRuntime>,
}

/// The pre-builder name of [`Session`], kept for source compatibility.
#[deprecated(
    since = "0.6.0",
    note = "use `Engine::session_builder(..).open()`, which yields the unified `Session` type"
)]
pub type StreamSession<'e, A> = Session<'e, A>;

impl<'e, A: Application> Session<'e, A> {
    pub(crate) fn open(
        engine: &'e Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
        durability: Durability,
        durable: Option<DurableParts<A::Payload>>,
        options: SessionOptions,
    ) -> Self {
        let pool = engine.pool();
        let staging_depth = options
            .staging_depth
            .unwrap_or(engine.config().pipeline_depth)
            .max(1);
        let token = pool.register_session(staging_depth);
        let ctx = RunContext::new(engine, app, store, scheme, durability, options.label);
        let executors = ctx.executors();
        let hub = engine.obs().hub();
        hub.session_opened();
        hub.punctuation_interval(engine.config().punctuation_interval.max(1) as u64);
        Session {
            pool,
            token,
            shared: Arc::new(SessionShared {
                ctx,
                slots: (0..executors)
                    .map(|_| Mutex::new(ExecutorState::default()))
                    .collect(),
                completion: Completion::default(),
            }),
            builder: engine.batch_builder(app, store),
            conflict_scratch: ConflictScratch::default(),
            started: None,
            pushed: 0,
            jobs_dispatched: 0,
            durable,
            adaptive: options.adaptive.map(|config| AdaptiveRuntime {
                needs_latency: config.latency_bound.is_some(),
                controller: AdaptiveIntervalController::new(
                    config,
                    engine.config().punctuation_interval.max(1),
                ),
                window_started: None,
                window_events: 0,
            }),
        }
    }

    /// Number of executors serving this session.
    pub fn executors(&self) -> usize {
        self.shared.ctx.executors()
    }

    /// Events pushed into this session so far (live pushes only; see
    /// [`Session::ingested`] for the recovery-inclusive count).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Events this session has ingested overall.  For plain sessions this
    /// equals [`Session::pushed`]; for durable sessions it additionally
    /// counts the events covered by the restored checkpoint and replayed
    /// from the WAL — a resuming producer feeds `input[ingested()..]`.
    pub fn ingested(&self) -> u64 {
        let base = self
            .durable
            .as_ref()
            .map_or(0, |parts| parts.log.base().events);
        base + self.pushed
    }

    /// Batches handed to the executor pool so far.
    pub fn batches_dispatched(&self) -> u64 {
        self.jobs_dispatched / self.executors() as u64
    }

    /// The session's label, if one was set on the builder.
    pub fn label(&self) -> Option<&str> {
        self.shared.ctx.label()
    }

    /// The punctuation interval currently in effect.  Fixed at the engine's
    /// configured interval unless the session was opened with
    /// [`crate::builder::SessionBuilder::adaptive_punctuation`], in which
    /// case the controller retunes it between batches.
    pub fn punctuation_interval(&self) -> usize {
        self.builder.interval()
    }

    /// The durability log backing this session (`None` for plain sessions).
    pub fn log(&self) -> Option<&Arc<DurableLog>> {
        self.durable.as_ref().map(|parts| &parts.log)
    }

    /// Ingest one event: stamp it at arrival time, route it, and — when it
    /// completes a punctuation batch — stage the batch with the pool's
    /// session scheduler.  Blocks only when this session's staging queue
    /// (and the executor queues behind it) are full — per-session
    /// backpressure under sustained overload.
    ///
    /// In durable mode the event is appended to the write-ahead log before
    /// routing, and the WAL segment seals before the completed batch is
    /// dispatched.
    ///
    /// # Errors
    ///
    /// Plain sessions never return an error.  For durable sessions, an
    /// `Err` from the WAL *append* means the event is **not** durable and
    /// was not routed — the producer may retry it.  An `Err` from *sealing*
    /// is reported after the completed batch was dispatched anyway: the
    /// event is routed and must **not** be retried; only its durability is
    /// degraded until the next successful seal or checkpoint.
    pub fn push(&mut self, payload: A::Payload) -> StateResult<()> {
        if let Some(parts) = &self.durable {
            (parts.append)(&parts.log, &payload)?;
        }
        self.ingest_logged(payload)
    }

    /// Route one already-logged (or non-durable) event, sealing +
    /// dispatching at punctuation.
    ///
    /// A completed batch is dispatched even when the seal fails: its events
    /// are already routed into the run, so dropping the batch would fork the
    /// live results away from what recovery reproduces.  The seal error is
    /// still reported — durability is degraded (a crash would replay these
    /// events from the unsealed tail) but results stay exactly-once.
    pub(crate) fn ingest_logged(&mut self, payload: A::Payload) -> StateResult<()> {
        if let Some(batch) = self.ingest(payload) {
            let events = batch.events();
            let replayed = batch.replayed;
            let seq = batch.punctuation.seq;
            let obs = &self.shared.ctx.obs;
            let sealed = match &self.durable {
                Some(parts) => match parts.log.seal() {
                    Ok(epoch) => {
                        obs.trace_wal(seq, TraceKind::Sealed { epoch });
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
                None => Ok(()),
            };
            self.dispatch(batch);
            self.observe_batch(events, replayed);
            sealed?;
        }
        Ok(())
    }

    /// Mark subsequent ingests as recovery replays (or back to live events);
    /// replayed batches are excluded from latency sampling and adaptive
    /// observations.  The builder's durable open toggles this around the WAL
    /// replay loops.
    pub(crate) fn set_replay(&mut self, replaying: bool) {
        self.builder.set_replay(replaying);
    }

    /// Stamp and route one event *without* dispatching: the completed batch
    /// (if this event filled the punctuation interval) is handed back to
    /// the caller.  The builder's durable open uses this to replay sealed
    /// WAL segments without re-appending them.
    pub(crate) fn ingest(&mut self, payload: A::Payload) -> Option<EngineBatch<A::Payload>> {
        if self.started.is_none() {
            self.started = Some(clock::now());
        }
        if let Some(adaptive) = self.adaptive.as_mut() {
            adaptive.window_started.get_or_insert_with(clock::now);
        }
        self.pushed += 1;
        self.builder.push(payload)
    }

    /// Close and hand back the partially filled batch without dispatching
    /// (`None` if no events are pending).
    pub(crate) fn take_partial(&mut self) -> Option<EngineBatch<A::Payload>> {
        self.builder.finish()
    }

    /// Dispatch a batch previously handed out by [`Session::ingest`] /
    /// [`Session::take_partial`].
    pub(crate) fn dispatch_now(&mut self, batch: EngineBatch<A::Payload>) {
        self.dispatch(batch);
    }

    /// Block until every dispatched batch has been fully processed,
    /// re-raising the first executor panic (see [`Session::flush`]).
    pub(crate) fn drain(&mut self) {
        self.pool.drain_staged(self.token);
        if let Some(panic) = self.shared.completion.wait_for(self.jobs_dispatched) {
            std::panic::resume_unwind(panic);
        }
    }

    /// Close and dispatch the partially filled batch (if any) and block
    /// until every dispatched batch has been fully processed.  The store
    /// then reflects every event pushed so far; further `push` calls are
    /// allowed and start the next batch.  In durable mode the WAL segment
    /// seals before the partial batch dispatches, so the durability
    /// directory also reflects every pushed event on return.
    ///
    /// # Errors
    ///
    /// Plain sessions never return an error.  A durable seal failure is
    /// reported only after the partial batch was dispatched — results never
    /// fork from the log.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic an executor hit while processing this
    /// session's batches (e.g. a panicking [`Application`] method) — the
    /// same propagation `Engine::run` gave through `thread::scope` before
    /// the persistent pool.  The pool itself survives: the session's
    /// barrier is poisoned so sibling executors unwind instead of waiting
    /// forever, and the engine stays usable for new runs and sessions.
    pub fn flush(&mut self) -> StateResult<()> {
        let sealed = match self.take_partial() {
            Some(batch) => {
                let sealed = match &self.durable {
                    Some(parts) => parts.log.seal().map(|_| ()),
                    None => Ok(()),
                };
                self.dispatch(batch);
                sealed
            }
            None => Ok(()),
        };
        self.drain();
        sealed
    }

    /// Flush and aggregate the session into a [`RunReport`], closing the
    /// session.  For durable sessions the report's `events` / `committed` /
    /// `rejected` are cumulative across recovery — identical to an
    /// uninterrupted run over the same input.  Re-raises a worker panic the
    /// way [`Session::flush`] does.
    ///
    /// # Errors
    ///
    /// Plain sessions never return an error; durable sessions surface seal
    /// failures like [`Session::flush`].
    #[must_use = "the report carries the session's results"]
    pub fn report(mut self) -> StateResult<RunReport> {
        self.flush()?;
        let elapsed = self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
        let states: Vec<ExecutorState> = self
            .shared
            .slots
            .iter()
            .map(|slot| std::mem::take(&mut *slot.lock()))
            .collect();
        let mut report = self.shared.ctx.aggregate(states, elapsed, self.pushed);
        if let Some(parts) = &self.durable {
            let base = parts.log.base();
            report.events += base.events;
            report.committed += base.committed;
            report.rejected += base.rejected;
        }
        Ok(report)
    }

    /// Feed one completed batch into the adaptive-punctuation controller
    /// (no-op unless the session was opened with adaptive punctuation): the
    /// measured window throughput — and, when a latency bound is
    /// configured, the p99 over the results sunk so far — becomes an
    /// observation, and the suggested interval takes effect for the next
    /// batch.
    ///
    /// Replayed batches are excluded entirely: their throughput reflects
    /// replay speed, not live ingestion, and feeding it to the controller
    /// would tune the interval against a workload that no longer exists.
    /// The measurement window restarts at the next live batch.
    fn observe_batch(&mut self, batch_events: usize, replayed: bool) {
        if replayed {
            if let Some(adaptive) = self.adaptive.as_mut() {
                adaptive.window_started = None;
                adaptive.window_events = 0;
            }
            return;
        }
        let interval = self.builder.interval();
        // p99 across the per-executor sinks (only when the controller needs
        // it: the percentile scan is not free).
        let p99 = match &self.adaptive {
            Some(adaptive) if adaptive.needs_latency => self
                .shared
                .slots
                .iter()
                .filter_map(|slot| slot.lock().sink.percentile_so_far(99.0))
                .max()
                .unwrap_or(Duration::ZERO),
            _ => Duration::ZERO,
        };
        let Some(adaptive) = self.adaptive.as_mut() else {
            return;
        };
        adaptive.window_events += batch_events as u64;
        let Some(started) = adaptive.window_started else {
            return;
        };
        let elapsed = started.elapsed();
        if elapsed.is_zero() {
            return;
        }
        let throughput_keps = adaptive.window_events as f64 / elapsed.as_secs_f64() / 1_000.0;
        let next = adaptive.controller.observe(IntervalObservation {
            interval,
            throughput_keps,
            p99,
        });
        adaptive.window_started = Some(clock::now());
        adaptive.window_events = 0;
        if next != interval {
            self.builder.set_interval(next);
            self.shared.ctx.obs.hub().punctuation_interval(next as u64);
        }
    }

    /// Stage one completed batch with the pool's scheduler as a unit of
    /// per-executor jobs.  The scheduler injects it atomically into every
    /// executor queue, round-robin with the batches of other open sessions;
    /// a full staging queue delays only this (ingestion) thread, never an
    /// executor or a sibling session.
    ///
    /// Each job catches panics from the step (application code runs inside
    /// it): the first panic is recorded as the root cause and the session's
    /// barrier is poisoned, so sibling executors mid-batch unwind too (their
    /// poisoned-barrier panics are recorded only as secondary and dropped).
    /// Every job still marks completion, which keeps `flush` finite and the
    /// pool threads alive for the other sessions.
    fn dispatch(&mut self, mut batch: EngineBatch<A::Payload>) {
        // Routing-time conflict classification (TStream only): a batch whose
        // read/write sets are pairwise disjoint takes the restructuring-free
        // fast path on the executors.
        if matches!(self.shared.ctx.scheme, Scheme::TStream) {
            batch.conflict_free = crate::engine::batch_is_conflict_free(
                &batch.descriptors,
                &mut self.conflict_scratch,
            );
        }
        let obs = self.shared.ctx.obs.clone();
        let seq = batch.punctuation.seq;
        obs.hub()
            .batch_ingested(batch.events() as u64, batch.replayed);
        obs.trace_ingest(
            seq,
            TraceKind::BatchFormed {
                events: batch.events().min(u32::MAX as usize) as u32,
                replayed: batch.replayed,
            },
        );
        let batch = Arc::new(batch);
        let jobs: Vec<_> = (0..self.executors())
            .map(|e| {
                let shared = self.shared.clone();
                let batch = batch.clone();
                Box::new(move || {
                    let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let mut slot = shared.slots[e].lock();
                        shared.ctx.step(e, &batch, &mut slot);
                    }));
                    if let Err(payload) = step {
                        // First panic wins the post-mortem; siblings dying on
                        // the poisoned barrier are no-ops on the latch.
                        let obs = &shared.ctx.obs;
                        obs.trace_exec(e, batch.punctuation.seq, TraceKind::Panicked);
                        shared.completion.record_panic(payload);
                        shared.ctx.poison();
                        obs.trace_exec(e, batch.punctuation.seq, TraceKind::Poisoned);
                        obs.post_mortem("executor panicked while processing a session batch");
                    }
                    shared.completion.mark_one();
                }) as crate::runtime::Job
            })
            .collect();
        self.jobs_dispatched += jobs.len() as u64;
        let watch = Stopwatch::start_if(obs.enabled());
        let blocked = self.pool.stage(self.token, jobs);
        let wait_ns = if blocked {
            let waited = watch.elapsed();
            obs.hub().backpressure_wait(waited);
            waited.as_nanos().min(u64::MAX as u128) as u64
        } else {
            0
        };
        obs.trace_ingest(seq, TraceKind::BatchStaged { wait_ns });
        // Depth of this session's in-flight pipeline after staging, in
        // batches (dispatched minus retired).
        let executors = self.executors() as u64;
        let retired = self.shared.completion.done() / executors;
        obs.hub()
            .staged_depth(self.jobs_dispatched / executors - retired);
    }
}

impl<A: Application> std::fmt::Debug for Session<'_, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("label", &self.label())
            .field("executors", &self.executors())
            .field("pushed", &self.pushed)
            .field("batches_dispatched", &self.batches_dispatched())
            .field("durable", &self.durable.is_some())
            .field("adaptive", &self.adaptive.is_some())
            .finish()
    }
}

impl<A: Application> Drop for Session<'_, A> {
    fn drop(&mut self) {
        // The session must never unregister while its jobs are still on the
        // pool — `aggregate` reads the slots, and the scheduler must not
        // lose staged work.  Two cases:
        //
        // * normal drop: the session still completes — the trailing partial
        //   batch is dispatched (push has no "provisional until punctuation"
        //   caveat; durable sessions seal the WAL first so epochs stay
        //   aligned) and the pool drains.  After `report`/`flush` both steps
        //   are no-ops.  A recorded worker panic is swallowed — observing
        //   failures is what `flush`/`report` are for, and panicking from
        //   `drop` would abort;
        // * drop while unwinding: this session is being abandoned, so poison
        //   its barrier — in-flight jobs unwind at their next barrier wait
        //   instead of running the stream to completion — and drain before
        //   unregistering.  (Every job ends, panicked or not, so the wait
        //   is finite.)
        if std::thread::panicking() {
            self.shared.ctx.poison();
        } else if let Some(batch) = self.builder.finish() {
            if let Some(parts) = &self.durable {
                let _ = parts.log.seal();
            }
            self.dispatch(batch);
        }
        self.pool.drain_staged(self.token);
        let _ = self.shared.completion.wait_for(self.jobs_dispatched);
        self.pool.unregister_session(self.token);
        self.shared.ctx.obs.hub().session_closed();
    }
}
