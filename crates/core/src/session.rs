//! Streaming sessions: continuous ingestion over the persistent runtime.
//!
//! A [`StreamSession`] is the long-lived counterpart of [`Engine::run`]'s
//! one-shot interface.  It connects the three pipeline stages:
//!
//! * **ingestion** — [`StreamSession::push`] stamps the payload at arrival
//!   time and feeds the engine's online
//!   [`tstream_stream::source::BatchBuilder`];
//! * **execution** — every completed punctuation batch is dispatched to the
//!   engine's persistent [`crate::runtime::ExecutorPool`] immediately, so
//!   batch *k + 1* forms while batch *k* executes; the bounded per-executor
//!   queues block `push` when the executors fall behind (backpressure);
//! * **sink** — [`StreamSession::report`] flushes the trailing partial
//!   batch, waits for the pool to drain, and aggregates the same
//!   [`RunReport`] an offline run produces.
//!
//! A session holds the engine's exclusive run lease: sessions and offline
//! runs of one engine serialize rather than interleaving their barrier
//! generations or resetting each other's scheme/store state mid-flight.
//! Results are deterministic — identical inputs produce the same committed /
//! rejected counts and final store state as [`Engine::run_offline`], which
//! the `session_runtime` differential suite pins down.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};
use tstream_state::StateStore;
use tstream_stream::source::BatchBuilder;
use tstream_txn::{Application, TxnDescriptor};

use crate::engine::{
    Durability, Engine, EngineBatch, ExecutorState, RunContext, RunReport, Scheme,
};
use crate::runtime::ExecutorPool;

/// Payload of a panic caught on a pool worker.
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Tracks finished per-executor batch jobs — and the first panic any of
/// them raised — so `flush` can wait for the pool to drain this session's
/// work and re-raise the failure on the caller's thread.
#[derive(Default)]
struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Default)]
struct CompletionState {
    done: u64,
    panic: Option<PanicPayload>,
}

impl Completion {
    fn mark_one(&self) {
        let mut state = self.state.lock();
        state.done += 1;
        drop(state);
        self.cv.notify_all();
    }

    /// Record the first panic (later ones — typically the poisoned-barrier
    /// panics of the sibling executors — are dropped as secondary).
    fn record_panic(&self, payload: PanicPayload) {
        let mut state = self.state.lock();
        state.panic.get_or_insert(payload);
    }

    /// Wait until `target` jobs finished; returns the recorded root-cause
    /// panic, if any, for the caller to re-raise.
    fn wait_for(&self, target: u64) -> Option<PanicPayload> {
        let mut state = self.state.lock();
        while state.done < target {
            self.cv.wait(&mut state);
        }
        state.panic.take()
    }
}

/// State shared between the session handle and the jobs it dispatched:
/// the run context plus one accumulator slot per executor.  Jobs of one
/// executor run strictly in order on its pool thread, so each slot's mutex
/// is uncontended — it exists to move the state into `'static` jobs, not to
/// arbitrate access.
struct SessionShared<A: Application> {
    ctx: RunContext<A>,
    slots: Vec<Mutex<ExecutorState>>,
    completion: Completion,
}

/// A continuous-ingestion handle onto an [`Engine`].
///
/// ```
/// use std::sync::Arc;
/// use tstream_core::prelude::*;
///
/// struct Count;
/// impl Application for Count {
///     type Payload = u64;
///     fn name(&self) -> &'static str { "count" }
///     fn read_write_set(&self, key: &u64) -> ReadWriteSet {
///         ReadWriteSet::new().write(StateRef::new(0, *key))
///     }
///     fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
///         txn.read_modify(0, *key, None, |ctx| {
///             Ok(Value::Long(ctx.current.as_long()? + 1))
///         });
///     }
///     fn post_process(&self, _key: &u64, _b: &EventBlotter) -> PostAction {
///         PostAction::Emit
///     }
/// }
///
/// let table = TableBuilder::new("counters")
///     .extend((0..8u64).map(|k| (k, Value::Long(0))))
///     .build()
///     .unwrap();
/// let store = StateStore::new(vec![table]).unwrap();
/// let engine = Engine::new(EngineConfig::with_executors(2).punctuation(16));
/// let mut session = engine.session(&Arc::new(Count), &store, &Scheme::TStream);
/// for i in 0..64u64 {
///     session.push(i % 8);
/// }
/// session.flush(); // everything pushed so far is executed
/// let report = session.report();
/// assert_eq!(report.committed, 64);
/// ```
pub struct StreamSession<'e, A: Application> {
    pool: &'e ExecutorPool,
    _lease: MutexGuard<'e, ()>,
    shared: Arc<SessionShared<A>>,
    builder: BatchBuilder<A::Payload, TxnDescriptor>,
    started: Option<Instant>,
    pushed: u64,
    jobs_dispatched: u64,
}

impl<'e, A: Application> StreamSession<'e, A> {
    pub(crate) fn open(
        engine: &'e Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
        durability: Durability,
    ) -> Self {
        let lease = engine.lease();
        let pool = engine.pool();
        let ctx = RunContext::new(engine, app, store, scheme, durability);
        let executors = ctx.executors();
        StreamSession {
            pool,
            _lease: lease,
            shared: Arc::new(SessionShared {
                ctx,
                slots: (0..executors)
                    .map(|_| Mutex::new(ExecutorState::default()))
                    .collect(),
                completion: Completion::default(),
            }),
            builder: engine.batch_builder(app),
            started: None,
            pushed: 0,
            jobs_dispatched: 0,
        }
    }

    /// Number of executors serving this session.
    pub fn executors(&self) -> usize {
        self.shared.ctx.executors()
    }

    /// Events pushed so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Batches handed to the executor pool so far.
    pub fn batches_dispatched(&self) -> u64 {
        self.jobs_dispatched / self.executors() as u64
    }

    /// Ingest one event: stamp it at arrival time, route it, and — when it
    /// completes a punctuation batch — dispatch the batch to the executor
    /// pool.  Blocks only when the pool's bounded queues are full
    /// (backpressure under sustained overload).
    pub fn push(&mut self, payload: A::Payload) {
        if let Some(batch) = self.ingest(payload) {
            self.dispatch(batch);
        }
    }

    /// Stamp and route one event *without* dispatching: the completed batch
    /// (if this event filled the punctuation interval) is handed back to
    /// the caller.  Durable sessions use this to seal the WAL segment
    /// between batch completion and dispatch.
    pub(crate) fn ingest(&mut self, payload: A::Payload) -> Option<EngineBatch<A::Payload>> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        self.pushed += 1;
        self.builder.push(payload)
    }

    /// Close and hand back the partially filled batch without dispatching
    /// (`None` if no events are pending).
    pub(crate) fn take_partial(&mut self) -> Option<EngineBatch<A::Payload>> {
        self.builder.finish()
    }

    /// Dispatch a batch previously handed out by [`StreamSession::ingest`] /
    /// [`StreamSession::take_partial`].
    pub(crate) fn dispatch_now(&mut self, batch: EngineBatch<A::Payload>) {
        self.dispatch(batch);
    }

    /// Block until every dispatched batch has been fully processed,
    /// re-raising the first executor panic (see [`StreamSession::flush`]).
    pub(crate) fn drain(&mut self) {
        if let Some(panic) = self.shared.completion.wait_for(self.jobs_dispatched) {
            std::panic::resume_unwind(panic);
        }
    }

    /// Close and dispatch the partially filled batch (if any) and block
    /// until every dispatched batch has been fully processed.  The store
    /// then reflects every event pushed so far; further `push` calls are
    /// allowed and start the next batch.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic an executor hit while processing this
    /// session's batches (e.g. a panicking [`Application`] method) — the
    /// same propagation `Engine::run` gave through `thread::scope` before
    /// the persistent pool.  The pool itself survives: the run's barrier is
    /// poisoned so sibling executors unwind instead of waiting forever, and
    /// the engine stays usable for new runs and sessions.
    pub fn flush(&mut self) {
        if let Some(batch) = self.take_partial() {
            self.dispatch(batch);
        }
        self.drain();
    }

    /// Flush and aggregate the session into a [`RunReport`], releasing the
    /// engine's run lease.  Re-raises a worker panic the way
    /// [`StreamSession::flush`] does.
    pub fn report(mut self) -> RunReport {
        self.flush();
        let elapsed = self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
        let states: Vec<ExecutorState> = self
            .shared
            .slots
            .iter()
            .map(|slot| std::mem::take(&mut *slot.lock()))
            .collect();
        self.shared.ctx.aggregate(states, elapsed, self.pushed)
    }

    /// Send one completed batch to every executor's queue, in executor
    /// order.  Queues are drained independently, so a full queue only delays
    /// this (ingestion) thread, never an executor.
    ///
    /// Each job catches panics from the step (application code runs inside
    /// it): the first panic is recorded as the root cause and the run's
    /// barrier is poisoned, so sibling executors mid-batch unwind too (their
    /// poisoned-barrier panics are recorded only as secondary and dropped).
    /// Every job still marks completion, which keeps `flush` finite and the
    /// pool threads alive for the next run.
    fn dispatch(&mut self, batch: EngineBatch<A::Payload>) {
        let batch = Arc::new(batch);
        for e in 0..self.executors() {
            let shared = self.shared.clone();
            let batch = batch.clone();
            self.pool.submit(
                e,
                Box::new(move || {
                    let step = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let mut slot = shared.slots[e].lock();
                        shared.ctx.step(e, &batch, &mut slot);
                    }));
                    if let Err(payload) = step {
                        shared.completion.record_panic(payload);
                        shared.ctx.poison();
                    }
                    shared.completion.mark_one();
                }),
            );
            self.jobs_dispatched += 1;
        }
    }
}

impl<A: Application> Drop for StreamSession<'_, A> {
    fn drop(&mut self) {
        // The run lease must never be released while this session's jobs are
        // still on the pool — the next run would reset scheme/store state
        // under them.  Two cases:
        //
        // * normal drop: the session still completes — the trailing partial
        //   batch is dispatched (push has no "provisional until punctuation"
        //   caveat) and the pool drains.  After `report`/`flush` both steps
        //   are no-ops.  A recorded worker panic is swallowed — observing
        //   failures is what `flush`/`report` are for, and panicking from
        //   `drop` would abort;
        // * drop while unwinding: this session is being abandoned, so poison
        //   its barrier — in-flight jobs unwind at their next barrier wait
        //   instead of running the stream to completion — and drain before
        //   the lease goes.  (Every job ends, panicked or not, so the wait
        //   is finite.)
        if std::thread::panicking() {
            self.shared.ctx.poison();
        } else if let Some(batch) = self.builder.finish() {
            self.dispatch(batch);
        }
        let _ = self.shared.completion.wait_for(self.jobs_dispatched);
    }
}
