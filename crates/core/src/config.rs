//! Configuration of the TStream engine.

use tstream_obs::ObsConfig;
use tstream_recovery::{FsyncPolicy, GroupCommitConfig};
use tstream_state::MAX_SHARDS;
use tstream_stream::EventRouting;
use tstream_txn::NumaModel;

/// How operation chains are placed over executors on a multi-socket machine
/// (Section IV-E, "NUMA-Aware Processing", evaluated in Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainPlacement {
    /// One pool of operation chains per executor ("per core"); decomposed
    /// operations are routed to a fixed executor by hashing, and each
    /// executor processes only its own pool.  Minimises cross-core
    /// communication; may suffer from load imbalance.
    SharedNothing,
    /// A single pool shared by every executor; chains are claimed dynamically
    /// (work stealing) or split statically.
    SharedEverything,
    /// One pool per synthetic socket, shared by that socket's executors.
    SharedPerSocket,
}

impl ChainPlacement {
    /// All placements, in the order Figure 14 reports them.
    pub const ALL: [ChainPlacement; 3] = [
        ChainPlacement::SharedNothing,
        ChainPlacement::SharedEverything,
        ChainPlacement::SharedPerSocket,
    ];

    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ChainPlacement::SharedNothing => "shared-nothing",
            ChainPlacement::SharedEverything => "shared-everything",
            ChainPlacement::SharedPerSocket => "shared-per-socket",
        }
    }
}

/// How cross-chain data dependencies are resolved during state-access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependencyResolution {
    /// The paper's iterative process: in every round, process in parallel all
    /// chains whose dependencies have already been fully processed; repeat.
    /// Falls back to fine-grained scheduling if a dependency cycle between
    /// chains remains.
    Rounds,
    /// Fine-grained scheduling: every chain is processed immediately, and an
    /// operation with a dependency waits only until the depended-upon chain
    /// has advanced past all writes with smaller timestamps.
    FineGrained,
}

impl DependencyResolution {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DependencyResolution::Rounds => "rounds",
            DependencyResolution::FineGrained => "fine-grained",
        }
    }
}

/// Configuration of the TStream execution strategy.
#[derive(Debug, Clone, Copy)]
pub struct TStreamConfig {
    /// Chain placement over executors / sockets.
    pub placement: ChainPlacement,
    /// Whether executors in a sharing group claim chains dynamically
    /// (work stealing) instead of a static split.
    pub work_stealing: bool,
    /// Dependency-resolution strategy.
    pub resolution: DependencyResolution,
}

impl Default for TStreamConfig {
    fn default() -> Self {
        // The paper's default execution configuration (Section VI-B).
        TStreamConfig {
            placement: ChainPlacement::SharedNothing,
            work_stealing: false,
            resolution: DependencyResolution::FineGrained,
        }
    }
}

/// Configuration of a full engine run, shared by every scheme.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of executor threads ("cores" in the paper's figures).
    pub executors: usize,
    /// Punctuation interval in events (the paper's default is 500).
    pub punctuation_interval: usize,
    /// Cores per synthetic socket (the paper's machine has 10).
    pub cores_per_socket: usize,
    /// Number of state shards the run partitions chains (and, with
    /// shard-affine routing, events) over.  Should match the shard count of
    /// the [`tstream_state::StateStore`] the run executes against so chain
    /// routing and physical record placement agree; `1` reproduces the
    /// unsharded seed behaviour.
    pub num_shards: usize,
    /// How input events are assigned to executors: the paper's round-robin
    /// shuffle, or shard-affine routing onto the owners of their key shards.
    pub event_routing: EventRouting,
    /// NUMA model used for remote-access classification / delay injection.
    pub numa: NumaModel,
    /// TStream-specific options (ignored by eager schemes).
    pub tstream: TStreamConfig,
    /// Depth of each executor's batch queue in the pipelined runtime: how
    /// many batches may sit between ingestion and execution per executor
    /// before `push` blocks (backpressure).  Fixed when the engine's pool is
    /// spawned; clamped to at least 1.
    pub pipeline_depth: usize,
    /// When durable sessions force WAL appends to stable storage (ignored by
    /// non-durable runs).  The default syncs once per sealed batch.
    pub fsync: FsyncPolicy,
    /// A durable session writes an epoch-stamped checkpoint every
    /// `checkpoint_every` punctuation batches (clamped to at least 1).
    /// Between checkpoints the WAL alone carries durability, so larger
    /// values trade recovery replay time for run-time throughput.
    pub checkpoint_every: usize,
    /// Group-commit window of durable sessions, in events: WAL appends
    /// buffer in the writer's reusable frame buffer and flush (and, under
    /// [`FsyncPolicy::Always`], sync) when this many events accumulate.
    /// `1` degenerates to the pre-group-commit write-per-append behaviour.
    pub group_window_events: u64,
    /// Group-commit window of durable sessions, in buffered frame bytes:
    /// the window also flushes when the frame buffer reaches this size, so
    /// large payloads cannot grow the buffer unboundedly.
    pub group_window_bytes: u64,
    /// Observability: the metrics hub and flight recorder
    /// ([`tstream_obs::Obs`]) built for every engine.  On by default — the
    /// hub is lock-free relaxed atomics and the recorder writes to
    /// fixed-size per-thread rings, so the instrumented engine stays within
    /// the benchmarked overhead bound.  [`ObsConfig::disabled`] turns every
    /// recording call into a single branch.
    pub obs: ObsConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            executors: 1,
            punctuation_interval: 500,
            cores_per_socket: 10,
            num_shards: 1,
            event_routing: EventRouting::RoundRobin,
            numa: NumaModel::disabled(),
            tstream: TStreamConfig::default(),
            pipeline_depth: 4,
            fsync: FsyncPolicy::default(),
            checkpoint_every: 1,
            group_window_events: GroupCommitConfig::default().window_events,
            group_window_bytes: GroupCommitConfig::default().window_bytes,
            obs: ObsConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Convenience constructor for the common "N executors, default rest"
    /// case used throughout tests and benches.
    pub fn with_executors(executors: usize) -> Self {
        EngineConfig {
            executors: executors.max(1),
            ..Default::default()
        }
    }

    /// Set the punctuation interval.
    pub fn punctuation(mut self, interval: usize) -> Self {
        self.punctuation_interval = interval.max(1);
        self
    }

    /// Set the TStream chain placement.
    pub fn placement(mut self, placement: ChainPlacement) -> Self {
        self.tstream.placement = placement;
        self
    }

    /// Enable or disable work stealing for shared placements.
    pub fn work_stealing(mut self, enabled: bool) -> Self {
        self.tstream.work_stealing = enabled;
        self
    }

    /// Set the dependency-resolution strategy.
    pub fn resolution(mut self, resolution: DependencyResolution) -> Self {
        self.tstream.resolution = resolution;
        self
    }

    /// Set the NUMA model.
    pub fn numa(mut self, numa: NumaModel) -> Self {
        self.numa = numa;
        self
    }

    /// Set the number of state shards (clamped to `1..=MAX_SHARDS`).
    pub fn shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards.clamp(1, MAX_SHARDS as usize);
        self
    }

    /// Set the event-routing strategy.
    pub fn event_routing(mut self, routing: EventRouting) -> Self {
        self.event_routing = routing;
        self
    }

    /// Set the per-executor batch queue depth of the pipelined runtime
    /// (clamped to at least 1).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Set the WAL fsync policy of durable sessions.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the checkpoint cadence of durable sessions, in punctuation
    /// batches (clamped to at least 1).
    pub fn checkpoint_every(mut self, batches: usize) -> Self {
        self.checkpoint_every = batches.max(1);
        self
    }

    /// Set the group-commit window of durable sessions: the WAL flushes
    /// (and under [`FsyncPolicy::Always`] syncs) whenever `events` appends
    /// or `bytes` buffered frame bytes accumulate, whichever comes first
    /// (both clamped to at least 1).  `(1, _)` restores write-per-append.
    pub fn group_window(mut self, events: u64, bytes: u64) -> Self {
        self.group_window_events = events.max(1);
        self.group_window_bytes = bytes.max(1);
        self
    }

    /// Set the observability configuration (use [`ObsConfig::disabled`] to
    /// turn the metrics hub and flight recorder off).
    pub fn observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// The group-commit window as the recovery layer's config type.
    pub fn group_commit(&self) -> GroupCommitConfig {
        GroupCommitConfig {
            window_events: self.group_window_events,
            window_bytes: self.group_window_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = EngineConfig::default();
        assert_eq!(cfg.punctuation_interval, 500);
        assert_eq!(cfg.cores_per_socket, 10);
        assert_eq!(cfg.num_shards, 1, "unsharded by default, like the seed");
        assert_eq!(cfg.event_routing, EventRouting::RoundRobin);
        assert_eq!(cfg.pipeline_depth, 4);
        assert_eq!(cfg.fsync, FsyncPolicy::OnSeal);
        assert_eq!(cfg.checkpoint_every, 1);
        assert_eq!(cfg.group_window_events, 128);
        assert_eq!(cfg.group_window_bytes, 32 * 1024);
        assert!(cfg.obs.enabled, "observability is on by default");
        assert_eq!(cfg.tstream.placement, ChainPlacement::SharedNothing);
        assert!(!cfg.tstream.work_stealing);
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = EngineConfig::with_executors(8)
            .punctuation(100)
            .placement(ChainPlacement::SharedPerSocket)
            .work_stealing(true)
            .resolution(DependencyResolution::Rounds);
        assert_eq!(cfg.executors, 8);
        assert_eq!(cfg.punctuation_interval, 100);
        assert_eq!(cfg.tstream.placement, ChainPlacement::SharedPerSocket);
        assert!(cfg.tstream.work_stealing);
        assert_eq!(cfg.tstream.resolution, DependencyResolution::Rounds);
    }

    #[test]
    fn degenerate_values_are_clamped() {
        let cfg = EngineConfig::with_executors(0)
            .punctuation(0)
            .shards(0)
            .pipeline_depth(0)
            .checkpoint_every(0);
        assert_eq!(cfg.executors, 1);
        assert_eq!(cfg.punctuation_interval, 1);
        assert_eq!(cfg.num_shards, 1);
        assert_eq!(cfg.pipeline_depth, 1);
        assert_eq!(cfg.checkpoint_every, 1);
        assert_eq!(
            EngineConfig::default().fsync(FsyncPolicy::Always).fsync,
            FsyncPolicy::Always
        );
        assert_eq!(
            EngineConfig::default().shards(100_000).num_shards,
            MAX_SHARDS as usize
        );
        let cfg = EngineConfig::default().group_window(0, 0);
        assert_eq!((cfg.group_window_events, cfg.group_window_bytes), (1, 1));
        let cfg = EngineConfig::default().group_window(256, 64 * 1024);
        assert_eq!(cfg.group_commit().window_events, 256);
        assert_eq!(cfg.group_commit().window_bytes, 64 * 1024);
    }

    #[test]
    fn shard_and_routing_builders_compose() {
        let cfg = EngineConfig::with_executors(4)
            .shards(8)
            .event_routing(EventRouting::ShardAffine);
        assert_eq!(cfg.num_shards, 8);
        assert_eq!(cfg.event_routing, EventRouting::ShardAffine);
    }

    #[test]
    fn observability_builder_composes() {
        let cfg = EngineConfig::with_executors(2).observability(ObsConfig::disabled());
        assert!(!cfg.obs.enabled);
        let cfg = EngineConfig::default().observability(ObsConfig::new().flight_capacity(64));
        assert!(cfg.obs.enabled);
        assert_eq!(cfg.obs.flight_capacity, 64);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ChainPlacement::SharedNothing.label(), "shared-nothing");
        assert_eq!(ChainPlacement::ALL.len(), 3);
        assert_eq!(DependencyResolution::FineGrained.label(), "fine-grained");
    }
}
