//! The spawn-once background WAL-writer thread.
//!
//! Group commit moves the per-window `write` + `fsync` off the ingestion
//! thread: when a durable session's frame buffer fills its group-commit
//! window, the window is handed to this writer, which commits windows **in
//! submission order, one at a time** — the FIFO ordering the
//! [`tstream_recovery::DurableLog`] relies on as its flush barrier — while
//! the ingestion thread keeps buffering the next window.
//!
//! The thread follows the same spawn-once discipline as the executor
//! threads: it is created lazily by [`crate::runtime::ExecutorPool`] the
//! first time a durable session opens, reused by every durable session of
//! the engine afterwards, and joined when the pool drops.  repolint audits
//! this file as one of the pool's two allowed spawn sites.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};

use tstream_obs::Obs;
use tstream_recovery::FlushExecutor;

/// One write job: commit a pending group-commit window (or any closure that
/// must run on the writer thread in submission order).
type WriteJob = Box<dyn FnOnce() + Send + 'static>;

/// Queue depth of the writer.  Each durable log keeps at most one window in
/// flight, so the bound only matters when many sessions share the writer —
/// then a full queue backpressures their ingestion threads, exactly like the
/// executor queues do.
const QUEUE_DEPTH: usize = 64;

/// Pool-owned writer thread: the join handle plus the live job sender.
/// Dropping it disconnects the queue and joins the thread (queued windows
/// still commit before exit).
#[derive(Debug)]
pub(crate) struct WalWriter {
    /// `None` only during teardown: dropping the sender is what tells the
    /// thread to exit its receive loop.
    jobs: Option<Sender<WriteJob>>,
    handle: Option<JoinHandle<()>>,
}

impl WalWriter {
    /// Spawn the writer thread.  Called exactly once per pool (guarded by
    /// [`crate::runtime::ExecutorPool::wal_writer`]).  A panicking write job
    /// dumps the engine's flight recorder before the panic re-raises and
    /// kills the thread — a WAL-writer death is exactly the kind of crash
    /// the post-mortem exists for.
    pub(crate) fn spawn(obs: Arc<Obs>) -> Self {
        let (tx, rx) = bounded::<WriteJob>(QUEUE_DEPTH);
        let handle = std::thread::Builder::new()
            .name("tstream-wal-writer".to_owned())
            .spawn(move || {
                for job in rx.iter() {
                    if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(job)) {
                        obs.post_mortem("WAL writer thread panicked");
                        std::panic::resume_unwind(payload);
                    }
                }
            })
            .expect("spawning the WAL writer thread");
        WalWriter {
            jobs: Some(tx),
            handle: Some(handle),
        }
    }

    /// A cloneable submission handle for attaching to a durable log.
    pub(crate) fn handle(&self) -> WalWriterHandle {
        WalWriterHandle {
            jobs: self
                .jobs
                .clone()
                .expect("WAL writer is live until the pool drops"),
        }
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        self.jobs.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Cloneable handle submitting flush jobs to the pool's WAL writer; the
/// engine attaches one to every durable session's log.
#[derive(Debug, Clone)]
pub struct WalWriterHandle {
    jobs: Sender<WriteJob>,
}

impl FlushExecutor for WalWriterHandle {
    fn submit(&self, job: WriteJob) {
        // Sessions borrow the engine, so the pool — and with it the writer
        // thread — strictly outlives every log that can submit.
        let sent = self.jobs.send(job);
        assert!(
            sent.is_ok(),
            "WAL writer thread exited with logs still live"
        );
    }
}
