//! Operation chains and their placement pools.
//!
//! During *compute mode* every postponed state transaction is decomposed into
//! operations, and each operation is inserted into the **operation chain** of
//! its target state: a timestamp-ordered list tied to exactly one state
//! (Section IV-C.1, Figure 4).  Chains are backed by the concurrent skip list
//! so multiple executors can insert simultaneously while preserving order.
//!
//! Chains live in **pools**; how many pools exist and which executors insert
//! into / process which pool is decided by the NUMA-aware placement policy
//! (Section IV-E): shared-nothing (one pool per executor), shared-everything
//! (one global pool) or shared-per-socket (one pool per synthetic socket).
//!
//! Pool routing is **shard-aware**: a state's pool is derived from the shard
//! the state store assigns its key to (the same [`ShardRouter`] the store
//! uses), so with `num_shards == pool count` every chain of a shard lands in
//! exactly one pool — the shard's owner ([`ExecutorLayout::executor_for_shard`])
//! — and with fewer shards than pools each shard's chains are spread over a
//! fixed, disjoint pool subset.  `num_shards == 1` reproduces the seed's pure
//! hash spreading.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tstream_skiplist::ConcurrentSkipList;
use tstream_state::{ShardId, ShardRouter, Timestamp, MAX_SHARDS};
use tstream_stream::executor::{ExecutorId, ExecutorLayout};
use tstream_stream::operator::StateRef;
use tstream_txn::Operation;

use crate::config::ChainPlacement;

/// Ordering key of an operation within a chain: `(timestamp, op index)` —
/// unique even if a transaction touches the same state twice.
pub type ChainKey = (Timestamp, u32);

/// `BuildHasher` for the pool shard maps: an Fx-style multiplicative word
/// hash.  `StateRef` keys are a pair of machine words on the per-operation
/// routing hot path, where the default SipHash costs more than the map probe
/// itself; hash flooding is no concern for keys the applications themselves
/// generate.
#[derive(Debug, Default, Clone)]
struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

#[derive(Debug)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
}

/// Sentinel meaning "every operation of this chain has been processed".
const FULLY_PROCESSED: u64 = u64::MAX;

/// A timestamp-ordered list of operations targeting one state.
#[derive(Debug)]
pub struct OperationChain {
    state: StateRef,
    ops: ConcurrentSkipList<ChainKey, Operation>,
    /// Set when some operation in *another* chain declares a dependency on
    /// this chain's state — processing then keeps temporary versions so
    /// dependent reads observe timestamp-consistent values.
    depended_upon: AtomicBool,
    /// Mirror of `!dependencies.is_empty()`, readable without the lock: the
    /// schedulers test this once per chain on the processing hot path.
    has_deps: AtomicBool,
    /// States this chain's operations depend on (chain-level dependency
    /// edges, used by the round-based scheduler).
    dependencies: Mutex<Vec<StateRef>>,
    /// All operations with `ts < processed_upto` have been applied.
    /// `u64::MAX` once the whole chain is done.
    processed_upto: AtomicU64,
}

impl OperationChain {
    /// Creates an empty chain for `state`.
    pub fn new(state: StateRef) -> Self {
        OperationChain {
            state,
            ops: ConcurrentSkipList::new(),
            depended_upon: AtomicBool::new(false),
            has_deps: AtomicBool::new(false),
            dependencies: Mutex::new(Vec::new()),
            processed_upto: AtomicU64::new(0),
        }
    }

    /// The state this chain targets.
    pub fn state(&self) -> StateRef {
        self.state
    }

    /// Insert a decomposed operation (concurrent, lock-free).
    ///
    /// Batch events are decomposed in timestamp order, so in the common case
    /// this is an O(1) append onto the chain's tail (the skip list's append
    /// fast path); out-of-order keys — a replay tail interleaving with fresh
    /// events — fall back to a sorted insertion.
    pub fn insert(&self, op: Operation) {
        let key = (op.ts, op.op_index);
        let inserted = self.ops.insert(key, op);
        debug_assert!(
            inserted,
            "chain keys (ts, op_index) are unique within a batch"
        );
    }

    /// Number of operations currently in the chain.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the chain holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate operations in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter().map(|(_, op)| op)
    }

    /// Mark that another chain depends on this chain's state.
    pub fn mark_depended_upon(&self) {
        self.depended_upon.store(true, Ordering::Release);
    }

    /// Whether any other chain depends on this chain's state.
    pub fn is_depended_upon(&self) -> bool {
        self.depended_upon.load(Ordering::Acquire)
    }

    /// Record that this chain contains an operation depending on `dep`.
    pub fn add_dependency(&self, dep: StateRef) {
        let mut deps = self.dependencies.lock();
        if !deps.contains(&dep) {
            deps.push(dep);
        }
        self.has_deps.store(true, Ordering::Release);
    }

    /// Distinct states this chain depends on.
    pub fn dependencies(&self) -> Vec<StateRef> {
        self.dependencies.lock().clone()
    }

    /// Whether this chain declares any dependency.  Lock-free: the schedulers
    /// ask this once per chain while routing work.
    pub fn has_dependencies(&self) -> bool {
        self.has_deps.load(Ordering::Acquire)
    }

    /// Timestamp of the latest *write* operation strictly before `ts`, if
    /// any.  A dependent reader at `ts` must wait until this chain has
    /// advanced past it.
    pub fn last_write_before(&self, ts: Timestamp) -> Option<Timestamp> {
        let mut last = None;
        for (key, op) in self.ops.iter() {
            if key.0 >= ts {
                break;
            }
            if op.is_write() {
                last = Some(key.0);
            }
        }
        last
    }

    /// Advance the processed watermark: every operation with a strictly
    /// smaller timestamp than `next_ts` has been applied.
    pub fn advance_processed(&self, next_ts: Timestamp) {
        self.processed_upto.fetch_max(next_ts, Ordering::Release);
    }

    /// Mark the whole chain processed.
    pub fn mark_fully_processed(&self) {
        self.processed_upto
            .store(FULLY_PROCESSED, Ordering::Release);
    }

    /// Whether every operation of the chain has been processed.
    pub fn is_fully_processed(&self) -> bool {
        self.processed_upto.load(Ordering::Acquire) == FULLY_PROCESSED
    }

    /// Current processed watermark.
    pub fn processed_upto(&self) -> u64 {
        self.processed_upto.load(Ordering::Acquire)
    }

    /// Spin (with yields) until every write with timestamp `< ts` in this
    /// chain has been processed.
    pub fn wait_writes_before(&self, ts: Timestamp) {
        let Some(threshold) = self.last_write_before(ts) else {
            return;
        };
        let mut spins = 0u32;
        while self.processed_upto.load(Ordering::Acquire) <= threshold {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Reset per-batch processing state (the chain itself is discarded and
    /// rebuilt between batches; this is only used by tests and by chain
    /// reuse experiments).
    pub fn reset_progress(&self) {
        self.processed_upto.store(0, Ordering::Release);
    }

    /// Rebind a recycled chain to a new state, wiping every trace of the
    /// previous batch.  Exclusive access (the pool holds the only `Arc`)
    /// makes every reset a plain store — no synchronisation.
    fn reset_for(&mut self, state: StateRef) {
        self.state = state;
        self.ops.clear();
        *self.depended_upon.get_mut() = false;
        *self.has_deps.get_mut() = false;
        self.dependencies.get_mut().clear();
        *self.processed_upto.get_mut() = 0;
    }
}

/// A pool of operation chains (one per state touched in the current batch).
///
/// Chains are **arena-recycled** across batches: `clear` returns every chain
/// nothing else still references to a free list instead of dropping it, and
/// `chain_for` rebinds a recycled chain (skip-list nodes' allocations and
/// the dependency vector's capacity included) before allocating a fresh one.
/// On the steady-state hot path a batch touching the same working set as the
/// last one allocates nothing.
#[derive(Debug)]
pub struct ChainPool {
    shards: Vec<RwLock<HashMap<StateRef, Arc<OperationChain>, FxBuildHasher>>>,
    mask: u64,
    /// Per-batch task list (snapshot of chains) used during processing.
    tasks: Mutex<Vec<Arc<OperationChain>>>,
    next_task: AtomicUsize,
    /// Recycled chains awaiting reuse (bounded by [`FREE_LIST_CAP`]).
    free: Mutex<Vec<Arc<OperationChain>>>,
}

const POOL_SHARDS: usize = 32;

/// Upper bound on recycled chains retained per pool: enough to cover a
/// punctuation batch touching thousands of distinct states, small enough
/// that an outlier batch cannot pin its peak footprint forever.
const FREE_LIST_CAP: usize = 4096;

impl Default for ChainPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ChainPool {
            shards: (0..POOL_SHARDS)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            mask: (POOL_SHARDS - 1) as u64,
            tasks: Mutex::new(Vec::new()),
            next_task: AtomicUsize::new(0),
            free: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn shard_of(&self, state: StateRef) -> usize {
        let mut h = state.key ^ ((state.table as u64) << 48);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h & self.mask) as usize
    }

    /// Get (or create) the chain for `state`, preferring a recycled chain
    /// over a fresh allocation.
    pub fn chain_for(&self, state: StateRef) -> Arc<OperationChain> {
        let shard = &self.shards[self.shard_of(state)];
        if let Some(chain) = shard.read().get(&state) {
            return chain.clone();
        }
        let mut guard = shard.write();
        guard
            .entry(state)
            .or_insert_with(|| self.allocate(state))
            .clone()
    }

    /// Pop a recycled chain and rebind it, or allocate a fresh one.
    fn allocate(&self, state: StateRef) -> Arc<OperationChain> {
        let mut free = self.free.lock();
        while let Some(mut chain) = free.pop() {
            if let Some(slot) = Arc::get_mut(&mut chain) {
                slot.reset_for(state);
                return chain;
            }
            // Still pinned by a stale external reference: unsafe to reuse,
            // let it drop.  `clear` checks the count before recycling, so
            // this arm is defensive only.
        }
        drop(free);
        Arc::new(OperationChain::new(state))
    }

    /// Recycled chains currently waiting for reuse.
    pub fn free_chains(&self) -> usize {
        self.free.lock().len()
    }

    /// Get the chain for `state` if it exists.
    pub fn get(&self, state: StateRef) -> Option<Arc<OperationChain>> {
        self.shards[self.shard_of(state)]
            .read()
            .get(&state)
            .cloned()
    }

    /// Number of chains in the pool.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the pool holds no chains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every chain currently in the pool.
    pub fn snapshot(&self) -> Vec<Arc<OperationChain>> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.read().values().cloned());
        }
        out
    }

    /// Build the per-batch task list from the current chains (called once per
    /// batch by the pool's processing-group leader).
    pub fn prepare_tasks(&self) {
        let mut tasks = self.tasks.lock();
        tasks.clear();
        for shard in &self.shards {
            tasks.extend(shard.read().values().cloned());
        }
        // A deterministic order helps reproducibility of round-based
        // scheduling; sort by state.
        tasks.sort_by_key(|c| c.state());
        self.next_task.store(0, Ordering::Release);
    }

    /// Claim the next unprocessed task (work-stealing style); `None` when the
    /// task list is exhausted.
    pub fn claim_next(&self) -> Option<Arc<OperationChain>> {
        let tasks = self.tasks.lock();
        let idx = self.next_task.fetch_add(1, Ordering::AcqRel);
        tasks.get(idx).cloned()
    }

    /// Claim every not-yet-claimed task in one step.  A single-member
    /// processing group owns the whole list anyway; taking it in one lock
    /// acquisition avoids one mutex round-trip per chain.
    pub fn claim_all_remaining(&self) -> Vec<Arc<OperationChain>> {
        let tasks = self.tasks.lock();
        let start = self
            .next_task
            .swap(tasks.len(), Ordering::AcqRel)
            .min(tasks.len());
        tasks[start..].to_vec()
    }

    /// Static share of the task list for member `member` of a processing
    /// group of `group_size` executors (no work stealing).
    pub fn task_slice(&self, member: usize, group_size: usize) -> Vec<Arc<OperationChain>> {
        let tasks = self.tasks.lock();
        tasks
            .iter()
            .enumerate()
            .filter(|(i, _)| i % group_size.max(1) == member)
            .map(|(_, c)| c.clone())
            .collect()
    }

    /// Number of tasks prepared for the current batch.
    pub fn task_count(&self) -> usize {
        self.tasks.lock().len()
    }

    /// Visit every chain currently in the pool without cloning `Arc`s (one
    /// read lock per pool shard; used by per-shard accounting).
    pub fn for_each_chain(&self, mut f: impl FnMut(&OperationChain)) {
        for shard in &self.shards {
            for chain in shard.read().values() {
                f(chain);
            }
        }
    }

    /// Recycle every chain (end of batch): chains nothing else references
    /// go back to the free list for the next batch; the rest (e.g. versioned
    /// chains an executor still holds) drop normally.
    pub fn clear(&self) {
        // The task list holds `Arc` clones — drop them first or every chain
        // would look externally pinned.
        self.tasks.lock().clear();
        self.next_task.store(0, Ordering::Release);
        // Drain the shards before touching the free list: `chain_for` locks
        // shard-then-free-list, so holding the free list across a shard lock
        // would invert the order.
        let mut drained = Vec::new();
        for shard in &self.shards {
            drained.extend(shard.write().drain().map(|(_, chain)| chain));
        }
        let mut free = self.free.lock();
        for chain in drained {
            if free.len() < FREE_LIST_CAP && Arc::strong_count(&chain) == 1 {
                free.push(chain);
            }
        }
    }
}

/// The set of chain pools for a run, organised according to the placement
/// policy, plus the routing logic from states to pools (through the state
/// store's shard layer) and from executors to the pools they process.
#[derive(Debug)]
pub struct ChainPoolSet {
    placement: ChainPlacement,
    layout: ExecutorLayout,
    router: ShardRouter,
    pools: Vec<ChainPool>,
}

/// Which pool an executor processes, which position it occupies within the
/// group sharing that pool, and how large the group is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessingAssignment {
    /// Index of the pool the executor processes.
    pub pool: usize,
    /// The executor's rank within the group sharing the pool.
    pub member: usize,
    /// Number of executors sharing the pool.
    pub group_size: usize,
}

impl ProcessingAssignment {
    /// Whether this executor is the group leader (rank 0), responsible for
    /// preparing the pool's task list and clearing the pool afterwards.
    pub fn is_leader(&self) -> bool {
        self.member == 0
    }
}

impl ChainPoolSet {
    /// Creates the pools for the given placement, executor layout and state
    /// shard count (clamped to `1..=MAX_SHARDS`; it should match the shard
    /// count of the store the run executes against).
    pub fn new(placement: ChainPlacement, layout: ExecutorLayout, num_shards: u32) -> Self {
        let pool_count = match placement {
            ChainPlacement::SharedNothing => layout.executors,
            ChainPlacement::SharedEverything => 1,
            ChainPlacement::SharedPerSocket => layout.sockets(),
        };
        let router = ShardRouter::new(num_shards.clamp(1, MAX_SHARDS))
            .expect("clamped shard count is always valid");
        ChainPoolSet {
            placement,
            layout,
            router,
            pools: (0..pool_count.max(1)).map(|_| ChainPool::new()).collect(),
        }
    }

    /// Placement policy in force.
    pub fn placement(&self) -> ChainPlacement {
        self.placement
    }

    /// Number of state shards chains are routed by.
    pub fn num_shards(&self) -> u32 {
        self.router.shards()
    }

    /// The state shard owning a state's key (agrees with the store's router
    /// for the same shard count).
    pub fn shard_of_state(&self, state: StateRef) -> ShardId {
        self.router.shard_of(state.key)
    }

    /// All pools.
    pub fn pools(&self) -> &[ChainPool] {
        &self.pools
    }

    #[inline]
    fn hash_state(state: StateRef) -> u64 {
        let mut h = state.key ^ ((state.table as u64).rotate_left(32));
        h ^= h >> 31;
        h = h.wrapping_mul(0x7FB5_D329_728E_A185);
        h ^= h >> 27;
        h
    }

    /// Pool a state's chain lives in: the state's shard decides.
    ///
    /// With at least as many shards as pools, shard `s` maps straight to pool
    /// `s % pools` (shard-affine: one shard never splits across pools).  With
    /// fewer shards than pools, each shard owns the disjoint pool subset
    /// `{p | p % shards == s}` and spreads its chains over it by hash, so all
    /// pools stay busy; one shard degenerates to the seed's pure hash
    /// spreading.
    pub fn pool_index_for_state(&self, state: StateRef) -> usize {
        if matches!(self.placement, ChainPlacement::SharedEverything) {
            return 0;
        }
        let pools = self.pools.len();
        let shards = self.router.shards() as usize;
        let shard = self.router.shard_of(state.key).index();
        if shards >= pools {
            shard % pools
        } else {
            let candidates = (pools - shard).div_ceil(shards);
            shard + shards * (Self::hash_state(state) % candidates as u64) as usize
        }
    }

    /// Route a state to its pool.
    pub fn route(&self, state: StateRef) -> &ChainPool {
        &self.pools[self.pool_index_for_state(state)]
    }

    /// Get (or create) the chain for a state, wherever it lives.
    pub fn chain_for(&self, state: StateRef) -> Arc<OperationChain> {
        self.route(state).chain_for(state)
    }

    /// Find an existing chain for a state, wherever it lives.
    pub fn find_chain(&self, state: StateRef) -> Option<Arc<OperationChain>> {
        self.route(state).get(state)
    }

    /// The processing assignment of an executor.
    pub fn assignment(&self, executor: ExecutorId) -> ProcessingAssignment {
        match self.placement {
            ChainPlacement::SharedNothing => ProcessingAssignment {
                pool: executor.index() % self.pools.len(),
                member: 0,
                group_size: 1,
            },
            ChainPlacement::SharedEverything => ProcessingAssignment {
                pool: 0,
                member: executor.index(),
                group_size: self.layout.executors,
            },
            ChainPlacement::SharedPerSocket => {
                let socket = self.layout.socket_of(executor);
                let member = executor.index() % self.layout.cores_per_socket;
                let group_size = self.layout.executors_in_socket(socket).count().max(1);
                ProcessingAssignment {
                    pool: socket.min(self.pools.len() - 1),
                    member,
                    group_size,
                }
            }
        }
    }

    /// Whether insertion of `state` by `executor` crosses a pool boundary
    /// that the NUMA model counts as remote (used for RMA accounting during
    /// decomposition).
    pub fn is_remote_insert(&self, executor: ExecutorId, state: StateRef) -> bool {
        match self.placement {
            ChainPlacement::SharedNothing => {
                self.pool_index_for_state(state) != executor.index() % self.pools.len()
            }
            ChainPlacement::SharedEverything => false,
            ChainPlacement::SharedPerSocket => {
                self.pool_index_for_state(state) != self.layout.socket_of(executor)
            }
        }
    }

    /// Total chains across all pools.
    pub fn total_chains(&self) -> usize {
        self.pools.iter().map(|p| p.len()).sum()
    }

    /// Number of chains currently routed to each state shard (summed over
    /// pools).  The multipartition harness reports this to show the real
    /// shard placement of a batch.
    ///
    /// The engine calls this once per batch, so it must stay off the measured
    /// hot path: the single-shard (default) case is a handful of counter
    /// reads, and the multi-shard case visits chains in place without
    /// cloning.
    pub fn chains_per_shard(&self) -> Vec<usize> {
        if self.router.shards() == 1 {
            return vec![self.total_chains()];
        }
        let mut counts = vec![0usize; self.router.shards() as usize];
        for pool in &self.pools {
            pool.for_each_chain(|chain| {
                counts[self.router.shard_of(chain.state().key).index()] += 1;
            });
        }
        counts
    }

    /// Drop every chain in every pool (end of batch).
    pub fn clear_all(&self) {
        for pool in &self.pools {
            pool.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstream_txn::{AccessType, EventBlotter};

    fn op(ts: Timestamp, op_index: u32, table: u32, key: u64) -> Operation {
        Operation {
            ts,
            op_index,
            target: StateRef::new(table, key),
            slot: tstream_txn::INVALID_SLOT,
            access: AccessType::Read,
            dependency: None,
            dep_slot: tstream_txn::INVALID_SLOT,
            func: None,
            blotter: EventBlotter::new(1),
        }
    }

    #[test]
    fn chain_keeps_operations_in_timestamp_order() {
        let chain = OperationChain::new(StateRef::new(0, 1));
        for ts in [5u64, 1, 9, 3] {
            chain.insert(op(ts, 0, 0, 1));
        }
        let order: Vec<u64> = chain.iter().map(|o| o.ts).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
        assert_eq!(chain.len(), 4);
        assert!(!chain.is_empty());
    }

    #[test]
    fn same_transaction_can_touch_a_state_twice() {
        let chain = OperationChain::new(StateRef::new(0, 1));
        chain.insert(op(7, 0, 0, 1));
        chain.insert(op(7, 1, 0, 1));
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn dependency_flags_and_edges() {
        let chain = OperationChain::new(StateRef::new(0, 1));
        assert!(!chain.is_depended_upon());
        chain.mark_depended_upon();
        assert!(chain.is_depended_upon());
        chain.add_dependency(StateRef::new(1, 2));
        chain.add_dependency(StateRef::new(1, 2));
        assert_eq!(chain.dependencies().len(), 1);
        assert!(chain.has_dependencies());
    }

    #[test]
    fn last_write_before_skips_reads_and_later_ops() {
        let chain = OperationChain::new(StateRef::new(0, 1));
        let mut w = op(2, 0, 0, 1);
        w.access = AccessType::Write;
        chain.insert(w);
        chain.insert(op(4, 0, 0, 1)); // read at ts 4
        let mut w2 = op(6, 0, 0, 1);
        w2.access = AccessType::ReadModify;
        chain.insert(w2);
        assert_eq!(chain.last_write_before(1), None);
        assert_eq!(chain.last_write_before(5), Some(2));
        assert_eq!(chain.last_write_before(100), Some(6));
    }

    #[test]
    fn processed_watermark_progression() {
        let chain = OperationChain::new(StateRef::new(0, 1));
        let mut w = op(3, 0, 0, 1);
        w.access = AccessType::Write;
        chain.insert(w);
        assert_eq!(chain.processed_upto(), 0);
        // Nothing to wait for when there is no earlier write.
        chain.wait_writes_before(3);
        chain.advance_processed(4);
        // Now a reader at ts 5 is satisfied.
        chain.wait_writes_before(5);
        chain.mark_fully_processed();
        assert!(chain.is_fully_processed());
        chain.reset_progress();
        assert!(!chain.is_fully_processed());
    }

    #[test]
    fn pool_creates_chains_on_demand_and_clears() {
        let pool = ChainPool::new();
        assert!(pool.is_empty());
        let a = pool.chain_for(StateRef::new(0, 1));
        let b = pool.chain_for(StateRef::new(0, 1));
        assert!(Arc::ptr_eq(&a, &b), "same state must map to the same chain");
        pool.chain_for(StateRef::new(0, 2));
        assert_eq!(pool.len(), 2);
        assert!(pool.get(StateRef::new(0, 3)).is_none());
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn cleared_chains_are_recycled_with_state_wiped() {
        let pool = ChainPool::new();
        let chain = pool.chain_for(StateRef::new(0, 7));
        chain.insert(op(3, 0, 0, 7));
        chain.mark_depended_upon();
        chain.add_dependency(StateRef::new(0, 9));
        chain.advance_processed(4);
        let recycled_ptr = Arc::as_ptr(&chain);
        drop(chain); // the pool must hold the only reference to recycle
        pool.prepare_tasks();
        pool.clear();
        assert_eq!(pool.free_chains(), 1);

        // The next batch's chain for a *different* state reuses the arena
        // slot, fully reset.
        let reused = pool.chain_for(StateRef::new(1, 42));
        assert_eq!(Arc::as_ptr(&reused), recycled_ptr, "arena reuse");
        assert_eq!(reused.state(), StateRef::new(1, 42));
        assert!(reused.is_empty());
        assert!(!reused.is_depended_upon());
        assert!(!reused.has_dependencies());
        assert_eq!(reused.processed_upto(), 0);
        assert_eq!(pool.free_chains(), 0);
    }

    #[test]
    fn externally_pinned_chains_are_not_recycled() {
        let pool = ChainPool::new();
        let held = pool.chain_for(StateRef::new(0, 1)); // keep an Arc alive
        pool.chain_for(StateRef::new(0, 2));
        pool.clear();
        assert_eq!(pool.free_chains(), 1, "only the unpinned chain recycles");
        assert!(held.is_empty(), "the held chain is untouched");
        assert_eq!(held.state(), StateRef::new(0, 1));
    }

    #[test]
    fn pool_task_claiming_visits_every_chain_exactly_once() {
        let pool = ChainPool::new();
        for k in 0..50u64 {
            pool.chain_for(StateRef::new(0, k));
        }
        pool.prepare_tasks();
        assert_eq!(pool.task_count(), 50);
        let mut seen = Vec::new();
        while let Some(chain) = pool.claim_next() {
            seen.push(chain.state());
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn static_task_slices_partition_the_pool() {
        let pool = ChainPool::new();
        for k in 0..10u64 {
            pool.chain_for(StateRef::new(0, k));
        }
        pool.prepare_tasks();
        let a = pool.task_slice(0, 3);
        let b = pool.task_slice(1, 3);
        let c = pool.task_slice(2, 3);
        assert_eq!(a.len() + b.len() + c.len(), 10);
    }

    #[test]
    fn concurrent_inserts_into_one_pool() {
        let pool = Arc::new(ChainPool::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        let state = StateRef::new(0, i % 20);
                        let chain = pool.chain_for(state);
                        chain.insert(op(t * 500 + i, 0, 0, i % 20));
                    }
                });
            }
        });
        assert_eq!(pool.len(), 20);
        let total: usize = pool.snapshot().iter().map(|c| c.len()).sum();
        assert_eq!(total, 8 * 500);
    }

    #[test]
    fn placement_routes_and_assignments() {
        let layout = ExecutorLayout::new(20, 10);

        let sn = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 1);
        assert_eq!(sn.pools().len(), 20);
        let a = sn.assignment(ExecutorId(7));
        assert_eq!(a.pool, 7);
        assert_eq!(a.group_size, 1);
        assert!(a.is_leader());

        let se = ChainPoolSet::new(ChainPlacement::SharedEverything, layout, 1);
        assert_eq!(se.pools().len(), 1);
        let a = se.assignment(ExecutorId(7));
        assert_eq!(a.pool, 0);
        assert_eq!(a.group_size, 20);
        assert!(!a.is_leader());
        assert!(se.assignment(ExecutorId(0)).is_leader());

        let sps = ChainPoolSet::new(ChainPlacement::SharedPerSocket, layout, 1);
        assert_eq!(sps.pools().len(), 2);
        let a = sps.assignment(ExecutorId(13));
        assert_eq!(a.pool, 1);
        assert_eq!(a.member, 3);
        assert_eq!(a.group_size, 10);
    }

    #[test]
    fn state_routing_is_stable_and_within_bounds() {
        let layout = ExecutorLayout::new(12, 10);
        for num_shards in [1u32, 4, 32] {
            for placement in ChainPlacement::ALL {
                let set = ChainPoolSet::new(placement, layout, num_shards);
                assert_eq!(set.num_shards(), num_shards);
                for key in 0..500u64 {
                    let s = StateRef::new(1, key);
                    let p = set.pool_index_for_state(s);
                    assert!(p < set.pools().len());
                    assert_eq!(p, set.pool_index_for_state(s));
                    let chain = set.chain_for(s);
                    assert!(Arc::ptr_eq(&chain, &set.find_chain(s).unwrap()));
                }
                assert_eq!(set.total_chains(), 500);
                assert_eq!(
                    set.chains_per_shard().iter().sum::<usize>(),
                    500,
                    "per-shard counts must cover every chain"
                );
                set.clear_all();
                assert_eq!(set.total_chains(), 0);
            }
        }
    }

    #[test]
    fn shard_affine_routing_keeps_each_shard_in_one_pool() {
        // As many shards as executor pools: shard s maps to pool s, which is
        // exactly the pool executor s processes under shared-nothing.
        let layout = ExecutorLayout::new(8, 10);
        let set = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 8);
        for key in 0..2_000u64 {
            let state = StateRef::new(0, key);
            let shard = set.shard_of_state(state);
            assert_eq!(set.pool_index_for_state(state), shard.index());
            let owner = layout.executor_for_shard(shard.0);
            assert!(
                !set.is_remote_insert(owner, state),
                "the shard owner's insert must be pool-local"
            );
        }
    }

    #[test]
    fn few_shards_spread_over_disjoint_pool_subsets() {
        // 2 shards over 8 pools: shard 0 may only use even pools, shard 1
        // only odd pools, and both subsets are actually used.
        let layout = ExecutorLayout::new(8, 10);
        let set = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 2);
        let mut used = [Vec::new(), Vec::new()];
        for key in 0..2_000u64 {
            let state = StateRef::new(0, key);
            let shard = set.shard_of_state(state).index();
            let pool = set.pool_index_for_state(state);
            assert_eq!(pool % 2, shard, "pool parity must match the shard");
            used[shard].push(pool);
        }
        for pools in &mut used {
            pools.sort_unstable();
            pools.dedup();
            assert!(pools.len() > 1, "a shard must spread over its pool subset");
        }
    }

    #[test]
    fn per_shard_chain_counts_track_routing() {
        let layout = ExecutorLayout::new(4, 10);
        let set = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 4);
        let mut expected = vec![0usize; 4];
        for key in 0..300u64 {
            let state = StateRef::new(2, key);
            set.chain_for(state);
            expected[set.shard_of_state(state).index()] += 1;
        }
        assert_eq!(set.chains_per_shard(), expected);
    }

    #[test]
    fn remote_insert_classification() {
        let layout = ExecutorLayout::new(20, 10);
        let se = ChainPoolSet::new(ChainPlacement::SharedEverything, layout, 1);
        assert!(!se.is_remote_insert(ExecutorId(5), StateRef::new(0, 1)));

        let sn = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 1);
        let mut remote = 0;
        for key in 0..1000u64 {
            if sn.is_remote_insert(ExecutorId(0), StateRef::new(0, key)) {
                remote += 1;
            }
        }
        // With 20 executor-local pools, ~95 % of states belong to other pools.
        assert!(remote > 800);
    }
}
