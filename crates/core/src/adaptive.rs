//! Adaptive tuning of the punctuation interval.
//!
//! The punctuation interval is TStream's main tuning knob: a larger interval
//! exposes more parallelism among the postponed transactions (higher
//! throughput, Figure 12(a)) but delays the events waiting for their
//! transactions to be processed (higher worst-case latency, Figure 12(b)).
//! The paper leaves "the estimation of the optimal punctuation interval
//! itself to future work" (Section VI-F); this module implements a simple,
//! fully deterministic hill-climbing controller for it, used by the
//! `ablation_adaptive_interval` harness and the `adaptive_interval` example.
//!
//! The controller is deliberately engine-agnostic: callers run a benchmark
//! (or observe a production window) at the suggested interval, feed the
//! measured throughput and tail latency back through
//! [`AdaptiveIntervalController::observe`], and receive the next interval to
//! try.  Observations are a pure function of the caller's measurements, so
//! the controller is trivially unit-testable against synthetic
//! throughput/latency curves.

use std::time::Duration;

/// Static bounds and step sizes of the controller.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Smallest interval the controller will ever suggest.
    pub min_interval: usize,
    /// Largest interval the controller will ever suggest.
    pub max_interval: usize,
    /// Optional bound on the observed 99th-percentile latency; intervals that
    /// violate it are treated as overshoot regardless of their throughput.
    pub latency_bound: Option<Duration>,
    /// Multiplicative step applied while throughput keeps improving
    /// (e.g. 2.0 doubles the interval).
    pub growth: f64,
    /// Multiplicative back-off applied after an unsuccessful or
    /// latency-violating step (e.g. 0.5 halves the distance).
    pub shrink: f64,
    /// Relative throughput improvement below which a step is considered
    /// neutral (stops the search once the curve flattens).
    pub improvement_threshold: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_interval: 25,
            max_interval: 4_000,
            latency_bound: None,
            growth: 2.0,
            shrink: 0.5,
            improvement_threshold: 0.03,
        }
    }
}

/// One measured run at a suggested interval.
#[derive(Debug, Clone, Copy)]
pub struct IntervalObservation {
    /// The punctuation interval the measurement was taken at.
    pub interval: usize,
    /// Measured throughput in thousands of events per second.
    pub throughput_keps: f64,
    /// Measured 99th-percentile end-to-end latency.
    pub p99: Duration,
}

/// Which way the hill climb is currently moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// Hill-climbing controller for the punctuation interval.
#[derive(Debug, Clone)]
pub struct AdaptiveIntervalController {
    config: AdaptiveConfig,
    direction: Direction,
    /// Best latency-feasible observation so far.
    best: Option<IntervalObservation>,
    /// Interval the controller expects the caller to measure next.
    next: usize,
    /// Number of consecutive neutral steps (used to detect convergence).
    stalled: u32,
}

impl AdaptiveIntervalController {
    /// Create a controller starting from `initial` events per punctuation.
    pub fn new(config: AdaptiveConfig, initial: usize) -> Self {
        let next = initial.clamp(config.min_interval, config.max_interval);
        AdaptiveIntervalController {
            config,
            direction: Direction::Up,
            best: None,
            next,
            stalled: 0,
        }
    }

    /// The interval the caller should measure next.
    pub fn suggested_interval(&self) -> usize {
        self.next
    }

    /// Best latency-feasible observation seen so far.
    pub fn best(&self) -> Option<&IntervalObservation> {
        self.best.as_ref()
    }

    /// Whether the search has stopped moving (two consecutive neutral steps
    /// or the suggested interval pinned at a bound).
    pub fn converged(&self) -> bool {
        self.stalled >= 2
    }

    /// Whether an observation violates the configured latency bound.
    pub fn violates_latency(&self, observation: &IntervalObservation) -> bool {
        match self.config.latency_bound {
            Some(bound) => observation.p99 > bound,
            None => false,
        }
    }

    fn step(&self, from: usize, direction: Direction) -> usize {
        let factor = match direction {
            Direction::Up => self.config.growth.max(1.0 + f64::EPSILON),
            Direction::Down => self.config.shrink.clamp(f64::EPSILON, 1.0),
        };
        let stepped = ((from as f64) * factor).round() as usize;
        let stepped = if stepped == from {
            match direction {
                Direction::Up => from + 1,
                Direction::Down => from.saturating_sub(1),
            }
        } else {
            stepped
        };
        stepped.clamp(self.config.min_interval, self.config.max_interval)
    }

    /// Feed a measurement back and receive the next interval to try.
    pub fn observe(&mut self, observation: IntervalObservation) -> usize {
        let feasible = !self.violates_latency(&observation);

        if feasible {
            let improved = match &self.best {
                None => true,
                Some(best) => {
                    observation.throughput_keps
                        > best.throughput_keps * (1.0 + self.config.improvement_threshold)
                }
            };
            let regressed = match &self.best {
                None => false,
                Some(best) => {
                    observation.throughput_keps
                        < best.throughput_keps * (1.0 - self.config.improvement_threshold)
                }
            };
            if self
                .best
                .map(|b| observation.throughput_keps > b.throughput_keps)
                .unwrap_or(true)
            {
                self.best = Some(observation);
            }
            if improved {
                self.stalled = 0;
                // Keep moving the same way.
            } else if regressed {
                self.stalled = 0;
                self.direction = match self.direction {
                    Direction::Up => Direction::Down,
                    Direction::Down => Direction::Up,
                };
            } else {
                self.stalled += 1;
            }
        } else {
            // Latency bound violated: always back off towards smaller
            // intervals, regardless of throughput.
            self.stalled = 0;
            self.direction = Direction::Down;
        }

        let from = observation.interval;
        let mut next = self.step(from, self.direction);
        if next == from {
            // Pinned at a bound: nothing more to explore in this direction.
            self.stalled += 1;
            if let Some(best) = &self.best {
                next = best.interval;
            }
        }
        self.next = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic Figure 12(a)-shaped throughput curve: rises steeply, then
    /// saturates around an optimum.
    fn synthetic_throughput(interval: usize, optimum: f64) -> f64 {
        let x = interval as f64;
        1_000.0 * (x / (x + optimum))
    }

    /// Synthetic Figure 12(b)-shaped latency curve: grows with the interval.
    fn synthetic_p99(interval: usize) -> Duration {
        Duration::from_micros(100 + interval as u64)
    }

    fn observe_at(
        controller: &mut AdaptiveIntervalController,
        interval: usize,
        optimum: f64,
    ) -> usize {
        controller.observe(IntervalObservation {
            interval,
            throughput_keps: synthetic_throughput(interval, optimum),
            p99: synthetic_p99(interval),
        })
    }

    #[test]
    fn initial_interval_is_clamped_to_bounds() {
        let cfg = AdaptiveConfig {
            min_interval: 100,
            max_interval: 1_000,
            ..Default::default()
        };
        assert_eq!(
            AdaptiveIntervalController::new(cfg, 5).suggested_interval(),
            100
        );
        assert_eq!(
            AdaptiveIntervalController::new(cfg, 50_000).suggested_interval(),
            1_000
        );
    }

    #[test]
    fn climbs_towards_larger_intervals_while_throughput_improves() {
        let mut controller = AdaptiveIntervalController::new(AdaptiveConfig::default(), 25);
        let first = controller.suggested_interval();
        let second = observe_at(&mut controller, first, 500.0);
        assert!(
            second > first,
            "throughput is still rising, so keep growing"
        );
        let third = observe_at(&mut controller, second, 500.0);
        assert!(third > second);
    }

    #[test]
    fn converges_near_the_saturation_point() {
        let mut controller = AdaptiveIntervalController::new(AdaptiveConfig::default(), 25);
        let mut interval = controller.suggested_interval();
        for _ in 0..32 {
            interval = observe_at(&mut controller, interval, 400.0);
            if controller.converged() {
                break;
            }
        }
        assert!(controller.converged(), "search must terminate");
        let best = controller
            .best()
            .expect("at least one feasible observation");
        // The synthetic curve saturates well before the upper bound; the
        // controller must have pushed past the steep region.
        assert!(best.interval >= 400, "best interval {}", best.interval);
    }

    #[test]
    fn latency_bound_caps_the_interval() {
        let cfg = AdaptiveConfig {
            latency_bound: Some(Duration::from_micros(100 + 600)),
            ..Default::default()
        };
        let mut controller = AdaptiveIntervalController::new(cfg, 25);
        let mut interval = controller.suggested_interval();
        for _ in 0..32 {
            interval = observe_at(&mut controller, interval, 10_000.0);
        }
        let best = controller.best().expect("feasible observation exists");
        assert!(
            synthetic_p99(best.interval) <= Duration::from_micros(700),
            "best interval {} violates the latency bound",
            best.interval
        );
        // And the violating observations never became "best".
        assert!(best.interval <= 600);
    }

    #[test]
    fn regression_reverses_the_search_direction() {
        // A curve that peaks at 200 and then *drops*: growing past the peak
        // must flip the direction back down.
        let curve = |interval: usize| -> f64 {
            let x = interval as f64;
            1_000.0 - (x - 200.0).abs()
        };
        let mut controller = AdaptiveIntervalController::new(AdaptiveConfig::default(), 100);
        let mut interval = controller.suggested_interval();
        let mut seen = Vec::new();
        for _ in 0..16 {
            let next = controller.observe(IntervalObservation {
                interval,
                throughput_keps: curve(interval),
                p99: Duration::from_micros(1),
            });
            seen.push(interval);
            if controller.converged() {
                break;
            }
            interval = next;
        }
        let best = controller.best().unwrap();
        assert!(
            (100..=400).contains(&best.interval),
            "best {} should be near the peak",
            best.interval
        );
        assert!(seen.iter().any(|&i| i != best.interval));
    }

    #[test]
    fn bound_pinning_counts_as_convergence() {
        let cfg = AdaptiveConfig {
            min_interval: 25,
            max_interval: 100,
            ..Default::default()
        };
        let mut controller = AdaptiveIntervalController::new(cfg, 50);
        let mut interval = controller.suggested_interval();
        for _ in 0..8 {
            interval = observe_at(&mut controller, interval, 1_000_000.0);
            if controller.converged() {
                break;
            }
        }
        assert!(controller.converged());
        assert!(controller.best().unwrap().interval <= 100);
    }

    #[test]
    fn best_tracks_the_highest_feasible_throughput() {
        let mut controller = AdaptiveIntervalController::new(AdaptiveConfig::default(), 25);
        controller.observe(IntervalObservation {
            interval: 25,
            throughput_keps: 10.0,
            p99: Duration::from_millis(1),
        });
        controller.observe(IntervalObservation {
            interval: 50,
            throughput_keps: 30.0,
            p99: Duration::from_millis(1),
        });
        controller.observe(IntervalObservation {
            interval: 100,
            throughput_keps: 20.0,
            p99: Duration::from_millis(1),
        });
        assert_eq!(controller.best().unwrap().interval, 50);
    }
}
