//! The persistent executor pool and its session-multiplexing scheduler.
//!
//! The seed engine spawned a fresh `thread::scope` for every run — fine for
//! one-shot benchmarks, wrong for a long-lived runtime: sustained traffic
//! would pay thread creation and teardown on every run, and a continuous
//! stream has no "end of input" to scope the threads to.  This module spawns
//! the executor threads **once per engine** and parks them between batches:
//! each worker blocks on its own bounded job queue, and a
//! [`crate::session::Session`] feeds it one job per batch.  The bounded
//! queues double as the pipeline's backpressure — when the executors fall
//! behind, `push` on the session blocks instead of buffering without limit.
//!
//! On top of the raw queues sits a small **scheduler** that lets several
//! sessions share one pool concurrently:
//!
//! * each open session registers a bounded *staging queue* of completed
//!   punctuation batches (its own `pipeline_depth`), so a slow session
//!   backpressures **its own** producer without stalling its siblings;
//! * staged batches are *injected* into the executor queues one batch at a
//!   time, round-robin across sessions — fair interleaving at punctuation
//!   granularity;
//! * a batch is always injected **atomically**: its per-executor jobs reach
//!   every executor queue before any job of the next batch.  Combined with
//!   the strict per-queue FIFO order this keeps each session's
//!   [`tstream_stream::CyclicBarrier`] in lockstep and makes cross-session
//!   barrier deadlock impossible — every executor observes the same global
//!   batch order.
//!
//! There is no dedicated scheduler thread: whichever ingestion thread has
//! work drives the injection (a single *injector* role, handed off under the
//! scheduler lock), so opening M sessions spawns exactly zero additional
//! threads.  Spawns are counted (globally and per pool) so tests can verify
//! the "once per engine, not per run or batch" property instead of trusting
//! it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};

use crate::walwriter::{WalWriter, WalWriterHandle};

/// Process-wide count of executor threads ever spawned by any pool.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total executor threads spawned by every pool in this process so far.
/// Monotonic; only ever incremented by [`ExecutorPool::new`].
pub fn threads_spawned() -> u64 {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// One unit of work for one executor: process one batch (or any other
/// closure the engine needs run on a specific executor thread).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug)]
struct Worker {
    /// `None` only during teardown: dropping the sender is what tells the
    /// thread to exit its receive loop.
    jobs: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// One punctuation batch staged for injection: exactly one job per executor,
/// indexed by executor.
pub(crate) type BatchJobs = Vec<Job>;

/// Identifies one registered session inside a pool's scheduler.  Obtained
/// from [`ExecutorPool::register_session`]; never reused within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SessionToken(u64);

/// One session's bounded staging queue of completed batches.
struct SessionSlot {
    token: u64,
    staged: VecDeque<BatchJobs>,
    capacity: usize,
}

/// Shared scheduler state: the registered sessions and the injector role.
#[derive(Default)]
struct SchedulerState {
    slots: Vec<SessionSlot>,
    next_token: u64,
    /// Round-robin position: index of the slot the next injection scan
    /// starts at.
    cursor: usize,
    /// Whether some thread currently holds the injector role (is pushing a
    /// popped batch into the executor queues outside the lock).
    injecting: bool,
}

impl SchedulerState {
    fn slot_mut(&mut self, token: SessionToken) -> &mut SessionSlot {
        self.slots
            .iter_mut()
            .find(|s| s.token == token.0)
            .expect("session token is registered")
    }

    /// Pop the next staged batch in round-robin session order.
    fn pop_next(&mut self) -> Option<BatchJobs> {
        let n = self.slots.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if let Some(jobs) = self.slots[idx].staged.pop_front() {
                self.cursor = (idx + 1) % n;
                return Some(jobs);
            }
        }
        None
    }
}

/// The session-multiplexing scheduler (see the module docs).
#[derive(Default)]
struct Scheduler {
    state: Mutex<SchedulerState>,
    /// Signalled whenever injection progresses: a batch was popped (staging
    /// space freed) or the injector role was released.
    progress: Condvar,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Scheduler")
            .field("sessions", &state.slots.len())
            .field(
                "staged",
                &state.slots.iter().map(|s| s.staged.len()).sum::<usize>(),
            )
            .field("injecting", &state.injecting)
            .finish()
    }
}

/// A fixed-size pool of executor threads, spawned once and fed per-batch
/// jobs over bounded per-executor queues.
///
/// Workers process their queue strictly in FIFO order, so as long as every
/// executor is sent the batches of a session in the same order, the
/// session's [`tstream_stream::CyclicBarrier`] keeps them in lockstep
/// exactly as the scoped threads of the offline path do.  The pool itself is
/// scheme- and application-agnostic: jobs are type-erased closures, so one
/// pool serves every run of its engine regardless of payload type.
///
/// Concurrent sessions go through the pool's scheduler
/// (`register_session` / `stage` / `drain_staged`, crate-private), which
/// interleaves their batches fairly and injects each batch atomically.
#[derive(Debug)]
pub struct ExecutorPool {
    workers: Vec<Worker>,
    spawned: AtomicU64,
    scheduler: Scheduler,
    /// Debug-only audit of atomic batch injection: batches injected so far,
    /// and per-executor deliveries.  The single-injector protocol implies
    /// `delivered[e] == injected_batches` at the moment batch
    /// `injected_batches` pushes to executor `e`; `pump` asserts exactly
    /// that, so any future edit that lets two injections interleave fails
    /// fast in debug builds instead of corrupting barrier lockstep.
    #[cfg(debug_assertions)]
    injected_batches: AtomicU64,
    #[cfg(debug_assertions)]
    delivered: Vec<AtomicU64>,
    /// The pool's background WAL writer, spawned lazily on the first durable
    /// session and reused by every durable session afterwards (spawn-once,
    /// like the executors).  Joined on pool drop.
    wal_writer: Mutex<Option<WalWriter>>,
}

impl ExecutorPool {
    /// Spawns `executors` worker threads (clamped to ≥ 1), each parked on a
    /// bounded queue of `queue_depth` jobs (clamped to ≥ 1).
    pub fn new(executors: usize, queue_depth: usize) -> Self {
        let executors = executors.max(1);
        let queue_depth = queue_depth.max(1);
        let spawned = AtomicU64::new(0);
        let workers = (0..executors)
            .map(|e| {
                let (tx, rx) = bounded::<Job>(queue_depth);
                let handle = std::thread::Builder::new()
                    .name(format!("tstream-exec-{e}"))
                    .spawn(move || {
                        for job in rx.iter() {
                            job();
                        }
                    })
                    .expect("spawning an executor thread");
                spawned.fetch_add(1, Ordering::SeqCst);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                Worker {
                    jobs: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        ExecutorPool {
            workers,
            spawned,
            scheduler: Scheduler::default(),
            #[cfg(debug_assertions)]
            injected_batches: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            delivered: (0..executors).map(|_| AtomicU64::new(0)).collect(),
            wal_writer: Mutex::new(None),
        }
    }

    /// Handle to the pool's WAL-writer thread, spawning it on first use.
    /// Every durable session of the engine shares this one thread; the pool
    /// joins it on drop, so its lifecycle is as audited as the executors'.
    /// `obs` receives the post-mortem dump should a write job ever panic.
    pub fn wal_writer(&self, obs: &std::sync::Arc<tstream_obs::Obs>) -> WalWriterHandle {
        let mut writer = self.wal_writer.lock();
        writer
            .get_or_insert_with(|| WalWriter::spawn(obs.clone()))
            .handle()
    }

    /// Whether the WAL-writer thread has been spawned (test instrumentation
    /// for the spawn-once property).
    pub fn wal_writer_spawned(&self) -> bool {
        self.wal_writer.lock().is_some()
    }

    /// Register a session with the scheduler: it gets a staging queue of
    /// `capacity` batches (clamped to ≥ 1) — the session's private
    /// backpressure bound.
    pub(crate) fn register_session(&self, capacity: usize) -> SessionToken {
        let mut state = self.scheduler.state.lock();
        let token = state.next_token;
        state.next_token += 1;
        state.slots.push(SessionSlot {
            token,
            staged: VecDeque::new(),
            capacity: capacity.max(1),
        });
        SessionToken(token)
    }

    /// Remove a session from the scheduler.  Any still-staged batches are
    /// injected first — a session never vanishes with work half-submitted.
    pub(crate) fn unregister_session(&self, token: SessionToken) {
        self.drain_staged(token);
        let mut state = self.scheduler.state.lock();
        state.slots.retain(|s| s.token != token.0);
        let n = state.slots.len();
        state.cursor = if n == 0 { 0 } else { state.cursor % n };
    }

    /// Number of sessions currently registered with the scheduler.
    pub fn open_sessions(&self) -> usize {
        self.scheduler.state.lock().slots.len()
    }

    /// Test-only view of the scheduler: `(batches staged across all
    /// sessions, injector role held)`.
    #[cfg(test)]
    fn scheduler_snapshot(&self) -> (usize, bool) {
        let state = self.scheduler.state.lock();
        (
            state.slots.iter().map(|s| s.staged.len()).sum(),
            state.injecting,
        )
    }

    /// Stage one completed batch (`jobs[e]` is executor `e`'s share) for
    /// injection.  Blocks only while **this session's** staging queue is
    /// full — the per-session backpressure; other sessions stage freely in
    /// the meantime.  Returns whether the call hit that backpressure (found
    /// the staging queue full at least once), so the session can charge the
    /// wait to its ingestion metrics.
    pub(crate) fn stage(&self, token: SessionToken, jobs: BatchJobs) -> bool {
        assert_eq!(jobs.len(), self.executors(), "one job per executor");
        let mut jobs = Some(jobs);
        let mut backpressured = false;
        loop {
            {
                let mut state = self.scheduler.state.lock();
                let full = {
                    let slot = state.slot_mut(token);
                    slot.staged.len() >= slot.capacity
                };
                if !full {
                    let slot = state.slot_mut(token);
                    slot.staged.push_back(jobs.take().unwrap());
                } else if state.injecting {
                    // Someone else is injecting; it will free staging space
                    // (or release the injector role) and signal progress.
                    backpressured = true;
                    self.scheduler.progress.wait(&mut state);
                    continue;
                } else {
                    // Full and nobody injecting — take the injector role
                    // ourselves below to free space.
                    backpressured = true;
                }
            }
            if jobs.is_none() {
                break;
            }
            self.pump();
        }
        self.pump();
        backpressured
    }

    /// Inject every staged batch of `token`'s session into the executor
    /// queues (driving other sessions' batches along the way, as injection
    /// is strictly round-robin).  On return the session's staging queue is
    /// empty; its jobs may still be executing.
    pub(crate) fn drain_staged(&self, token: SessionToken) {
        loop {
            self.pump();
            let mut state = self.scheduler.state.lock();
            let empty = state.slot_mut(token).staged.is_empty();
            if empty {
                return;
            }
            if !state.injecting {
                // The injector finished between our pump and the lock;
                // re-enter pump and drive the rest ourselves.
                continue;
            }
            self.scheduler.progress.wait(&mut state);
        }
    }

    /// Drive the injector role: pop staged batches round-robin across
    /// sessions and push their jobs into the executor queues, until nothing
    /// is staged or another thread holds the role.  At most one thread
    /// injects at a time, so batches enter every executor queue in one
    /// global order — the property the per-session barriers rely on.
    fn pump(&self) {
        loop {
            let jobs = {
                let mut state = self.scheduler.state.lock();
                if state.injecting {
                    return;
                }
                let Some(jobs) = state.pop_next() else {
                    return;
                };
                state.injecting = true;
                jobs
            };
            // Staging space was freed by the pop: let blocked stagers in.
            self.scheduler.progress.notify_all();
            #[cfg(debug_assertions)]
            let batch_seq = self.injected_batches.fetch_add(1, Ordering::SeqCst);
            for (executor, job) in jobs.into_iter().enumerate() {
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    self.delivered[executor].fetch_add(1, Ordering::SeqCst),
                    batch_seq,
                    "batch injection interleaved: executor {executor} received \
                     another batch's jobs mid-injection (single-injector \
                     invariant broken)"
                );
                // May block on a full executor queue (pipeline
                // backpressure); executors drain independently, so this
                // always makes progress.
                self.submit(executor, job);
            }
            self.scheduler.state.lock().injecting = false;
            self.scheduler.progress.notify_all();
        }
    }

    /// Number of executor threads in the pool.
    pub fn executors(&self) -> usize {
        self.workers.len()
    }

    /// Threads this pool has spawned over its lifetime.  Equal to
    /// [`ExecutorPool::executors`] forever — the property the session tests
    /// pin down ("spawned once per engine, not per run or batch").
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Enqueue a job on `executor`'s queue, blocking while the queue is full
    /// (the pipeline's backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `executor` is out of range or the worker has already shut
    /// down (only possible during teardown).
    pub fn submit(&self, executor: usize, job: Job) {
        let sent = self.workers[executor]
            .jobs
            .as_ref()
            .expect("pool is shutting down")
            .send(job);
        assert!(sent.is_ok(), "executor thread exited with jobs outstanding");
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Disconnect every queue first so all workers wind down together...
        for worker in &mut self.workers {
            worker.jobs.take();
        }
        // ...then join them; remaining queued jobs still run before exit.
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // These tests probe real timing (blocked-thread interleavings), so
    // they sleep deliberately; the workspace-wide sleep ban targets
    // production code.
    #![allow(clippy::disallowed_methods)]
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn jobs_run_on_their_assigned_executor_in_fifo_order() {
        let pool = ExecutorPool::new(2, 4);
        let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        for seq in 0..10 {
            for e in 0..2 {
                let log = log.clone();
                pool.submit(
                    e,
                    Box::new(move || {
                        log.lock().push((e, seq));
                    }),
                );
            }
        }
        drop(pool); // joins; all jobs have run
        let log = log.lock();
        assert_eq!(log.len(), 20);
        for e in 0..2 {
            let seqs: Vec<usize> = log
                .iter()
                .filter(|(w, _)| *w == e)
                .map(|(_, s)| *s)
                .collect();
            assert_eq!(
                seqs,
                (0..10).collect::<Vec<_>>(),
                "executor {e} reordered jobs"
            );
        }
    }

    #[test]
    fn spawn_counters_count_threads_once() {
        let before = threads_spawned();
        let pool = ExecutorPool::new(3, 2);
        assert_eq!(pool.executors(), 3);
        assert_eq!(pool.spawned(), 3);
        assert!(threads_spawned() >= before + 3);
        // Submitting work does not spawn anything further.
        let hits = Arc::new(AtomicUsize::new(0));
        for e in 0..3 {
            for _ in 0..5 {
                let hits = hits.clone();
                pool.submit(
                    e,
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
        }
        let after_submits = pool.spawned();
        drop(pool);
        assert_eq!(after_submits, 3);
        assert_eq!(hits.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn the_wal_writer_spawns_once_and_runs_jobs_in_order() {
        use tstream_recovery::FlushExecutor;
        let pool = ExecutorPool::new(2, 2);
        let obs = Arc::new(tstream_obs::Obs::new(tstream_obs::ObsConfig::disabled(), 2));
        assert!(!pool.wal_writer_spawned(), "spawned lazily, not eagerly");
        let first = pool.wal_writer(&obs);
        let second = pool.wal_writer(&obs);
        assert!(pool.wal_writer_spawned());
        assert_eq!(pool.spawned(), 2, "the writer is not an executor");
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for (handle, tag) in [(&first, 1u32), (&second, 2), (&first, 3)] {
            let log = log.clone();
            handle.submit(Box::new(move || log.lock().push(tag)));
        }
        drop(first);
        drop(second);
        drop(pool); // joins the writer: every submitted job has run
        assert_eq!(*log.lock(), vec![1, 2, 3], "FIFO submission order");
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let pool = ExecutorPool::new(1, 1);
        let release = Arc::new(Mutex::new(()));
        let guard = release.lock();
        let blocker = release.clone();
        // First job blocks the worker; the queue (capacity 1) then fills.
        pool.submit(
            0,
            Box::new(move || {
                let _g = blocker.lock();
            }),
        );
        pool.submit(0, Box::new(|| {}));
        let t = std::time::Instant::now();
        let pool = Arc::new(pool);
        let p2 = pool.clone();
        let submitter = std::thread::spawn(move || {
            p2.submit(0, Box::new(|| {}));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !submitter.is_finished(),
            "third submit must block on the full queue"
        );
        drop(guard); // unblock the worker
        submitter.join().unwrap();
        assert!(t.elapsed() >= std::time::Duration::from_millis(10));
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let pool = ExecutorPool::new(0, 0);
        assert_eq!(pool.executors(), 1);
        pool.submit(0, Box::new(|| {}));
    }

    #[test]
    fn sessions_register_and_unregister() {
        let pool = ExecutorPool::new(1, 2);
        assert_eq!(pool.open_sessions(), 0);
        let a = pool.register_session(2);
        let b = pool.register_session(2);
        assert_ne!(a, b, "tokens are unique");
        assert_eq!(pool.open_sessions(), 2);
        pool.unregister_session(a);
        assert_eq!(pool.open_sessions(), 1);
        pool.unregister_session(b);
        assert_eq!(pool.open_sessions(), 0);
    }

    /// Build a one-executor batch that appends `id` to `log` when it runs.
    fn marker(log: &Arc<Mutex<Vec<&'static str>>>, id: &'static str) -> BatchJobs {
        let log = log.clone();
        vec![Box::new(move || log.lock().push(id))]
    }

    /// Block executor 0 until `release` flips, then fill its depth-1 queue,
    /// so the next injection blocks and everything staged afterwards piles
    /// up in the scheduler.
    fn gate_executor(pool: &ExecutorPool, release: &Arc<AtomicUsize>, filler: Job) {
        let flag = release.clone();
        pool.submit(
            0,
            Box::new(move || {
                while flag.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }),
        );
        pool.submit(0, filler);
    }

    /// Wait until one thread holds the injector role with `staged` batches
    /// still queued behind it.
    fn await_injector(pool: &ExecutorPool, staged: usize) {
        while pool.scheduler_snapshot() != (staged, true) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn staged_batches_interleave_round_robin_across_sessions() {
        // One executor, queue depth 1: the injection *order* becomes
        // observable once the worker is gated.
        let pool = Arc::new(ExecutorPool::new(1, 1));
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let release = Arc::new(AtomicUsize::new(0));
        let log2 = log.clone();
        gate_executor(
            &pool,
            &release,
            Box::new(move || log2.lock().push("filler")),
        );

        let a = pool.register_session(3);
        let b = pool.register_session(3);
        // The first stage on `a` becomes the injector and blocks on the full
        // executor queue; it then drives *all* later injections round-robin.
        let p2 = pool.clone();
        let a1 = marker(&log, "a1");
        let injector = std::thread::spawn(move || p2.stage(a, a1));
        await_injector(&pool, 0); // a1 popped, injector stuck in submit
        for jobs in [marker(&log, "a2"), marker(&log, "a3")] {
            pool.stage(a, jobs);
        }
        for jobs in [marker(&log, "b1"), marker(&log, "b2"), marker(&log, "b3")] {
            pool.stage(b, jobs);
        }
        assert!(!injector.is_finished(), "injector must be backpressured");

        release.store(1, Ordering::SeqCst); // unblock the worker
        injector.join().unwrap();
        pool.drain_staged(a);
        pool.drain_staged(b);
        pool.unregister_session(a);
        pool.unregister_session(b);
        while log.lock().len() < 7 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(
            *log.lock(),
            vec!["filler", "a1", "b1", "a2", "b2", "a3", "b3"],
            "batches must interleave fairly, one per session per turn"
        );
    }

    #[test]
    fn a_backpressured_session_does_not_block_its_siblings() {
        let pool = Arc::new(ExecutorPool::new(1, 1));
        let release = Arc::new(AtomicUsize::new(0));
        gate_executor(&pool, &release, Box::new(|| {}));

        let a = pool.register_session(1);
        let b = pool.register_session(4);
        let ran_b = Arc::new(AtomicUsize::new(0));

        // Session A's stage becomes the injector and blocks on the executor
        // queue.
        let p2 = pool.clone();
        let stuck = std::thread::spawn(move || p2.stage(a, vec![Box::new(|| {})]));
        await_injector(&pool, 0);
        assert!(!stuck.is_finished());

        // Session B keeps staging without blocking: its own queue has room.
        let t = std::time::Instant::now();
        for _ in 0..3 {
            let hits = ran_b.clone();
            pool.stage(
                b,
                vec![Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                })],
            );
        }
        assert!(
            t.elapsed() < std::time::Duration::from_millis(200),
            "B's staging must not wait for A's injection"
        );

        release.store(1, Ordering::SeqCst);
        stuck.join().unwrap();
        pool.drain_staged(b);
        pool.unregister_session(a);
        pool.unregister_session(b);
        while ran_b.load(Ordering::SeqCst) < 3 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn unregister_injects_leftover_staged_batches() {
        let pool = ExecutorPool::new(1, 4);
        let token = pool.register_session(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let h = hits.clone();
            pool.stage(
                token,
                vec![Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                })],
            );
        }
        pool.unregister_session(token);
        drop(pool); // joins the worker: every staged job must have run
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }
}
