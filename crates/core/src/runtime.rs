//! The persistent executor pool.
//!
//! The seed engine spawned a fresh `thread::scope` for every run — fine for
//! one-shot benchmarks, wrong for a long-lived runtime: sustained traffic
//! would pay thread creation and teardown on every run, and a continuous
//! stream has no "end of input" to scope the threads to.  This module spawns
//! the executor threads **once per engine** and parks them between batches:
//! each worker blocks on its own bounded job queue, and a
//! [`crate::session::StreamSession`] feeds it one job per batch.  The bounded
//! queues double as the pipeline's backpressure — when the executors fall
//! behind, `push` on the session blocks instead of buffering without limit.
//!
//! Spawns are counted (globally and per pool) so tests can verify the
//! "once per engine, not per run or batch" property instead of trusting it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};

/// Process-wide count of executor threads ever spawned by any pool.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total executor threads spawned by every pool in this process so far.
/// Monotonic; only ever incremented by [`ExecutorPool::new`].
pub fn threads_spawned() -> u64 {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// One unit of work for one executor: process one batch (or any other
/// closure the engine needs run on a specific executor thread).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug)]
struct Worker {
    /// `None` only during teardown: dropping the sender is what tells the
    /// thread to exit its receive loop.
    jobs: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed-size pool of executor threads, spawned once and fed per-batch
/// jobs over bounded per-executor queues.
///
/// Workers process their queue strictly in FIFO order, so as long as every
/// executor is sent the batches of a session in the same order, the
/// session's [`tstream_stream::CyclicBarrier`] keeps them in lockstep
/// exactly as the scoped threads of the offline path do.  The pool itself is
/// scheme- and application-agnostic: jobs are type-erased closures, so one
/// pool serves every run of its engine regardless of payload type.
#[derive(Debug)]
pub struct ExecutorPool {
    workers: Vec<Worker>,
    spawned: AtomicU64,
}

impl ExecutorPool {
    /// Spawns `executors` worker threads (clamped to ≥ 1), each parked on a
    /// bounded queue of `queue_depth` jobs (clamped to ≥ 1).
    pub fn new(executors: usize, queue_depth: usize) -> Self {
        let executors = executors.max(1);
        let queue_depth = queue_depth.max(1);
        let spawned = AtomicU64::new(0);
        let workers = (0..executors)
            .map(|e| {
                let (tx, rx) = bounded::<Job>(queue_depth);
                let handle = std::thread::Builder::new()
                    .name(format!("tstream-exec-{e}"))
                    .spawn(move || {
                        for job in rx.iter() {
                            job();
                        }
                    })
                    .expect("spawning an executor thread");
                spawned.fetch_add(1, Ordering::SeqCst);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                Worker {
                    jobs: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        ExecutorPool { workers, spawned }
    }

    /// Number of executor threads in the pool.
    pub fn executors(&self) -> usize {
        self.workers.len()
    }

    /// Threads this pool has spawned over its lifetime.  Equal to
    /// [`ExecutorPool::executors`] forever — the property the session tests
    /// pin down ("spawned once per engine, not per run or batch").
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Enqueue a job on `executor`'s queue, blocking while the queue is full
    /// (the pipeline's backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `executor` is out of range or the worker has already shut
    /// down (only possible during teardown).
    pub fn submit(&self, executor: usize, job: Job) {
        let sent = self.workers[executor]
            .jobs
            .as_ref()
            .expect("pool is shutting down")
            .send(job);
        assert!(sent.is_ok(), "executor thread exited with jobs outstanding");
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // Disconnect every queue first so all workers wind down together...
        for worker in &mut self.workers {
            worker.jobs.take();
        }
        // ...then join them; remaining queued jobs still run before exit.
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn jobs_run_on_their_assigned_executor_in_fifo_order() {
        let pool = ExecutorPool::new(2, 4);
        let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        for seq in 0..10 {
            for e in 0..2 {
                let log = log.clone();
                pool.submit(
                    e,
                    Box::new(move || {
                        log.lock().push((e, seq));
                    }),
                );
            }
        }
        drop(pool); // joins; all jobs have run
        let log = log.lock();
        assert_eq!(log.len(), 20);
        for e in 0..2 {
            let seqs: Vec<usize> = log
                .iter()
                .filter(|(w, _)| *w == e)
                .map(|(_, s)| *s)
                .collect();
            assert_eq!(
                seqs,
                (0..10).collect::<Vec<_>>(),
                "executor {e} reordered jobs"
            );
        }
    }

    #[test]
    fn spawn_counters_count_threads_once() {
        let before = threads_spawned();
        let pool = ExecutorPool::new(3, 2);
        assert_eq!(pool.executors(), 3);
        assert_eq!(pool.spawned(), 3);
        assert!(threads_spawned() >= before + 3);
        // Submitting work does not spawn anything further.
        let hits = Arc::new(AtomicUsize::new(0));
        for e in 0..3 {
            for _ in 0..5 {
                let hits = hits.clone();
                pool.submit(
                    e,
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
        }
        let after_submits = pool.spawned();
        drop(pool);
        assert_eq!(after_submits, 3);
        assert_eq!(hits.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let pool = ExecutorPool::new(1, 1);
        let release = Arc::new(Mutex::new(()));
        let guard = release.lock();
        let blocker = release.clone();
        // First job blocks the worker; the queue (capacity 1) then fills.
        pool.submit(
            0,
            Box::new(move || {
                let _g = blocker.lock();
            }),
        );
        pool.submit(0, Box::new(|| {}));
        let t = std::time::Instant::now();
        let pool = Arc::new(pool);
        let p2 = pool.clone();
        let submitter = std::thread::spawn(move || {
            p2.submit(0, Box::new(|| {}));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !submitter.is_finished(),
            "third submit must block on the full queue"
        );
        drop(guard); // unblock the worker
        submitter.join().unwrap();
        assert!(t.elapsed() >= std::time::Duration::from_millis(10));
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let pool = ExecutorPool::new(0, 0);
        assert_eq!(pool.executors(), 1);
        pool.submit(0, Box::new(|| {}));
    }
}
