//! Deprecated durable entry points, forwarding to the session builder.
//!
//! Durable (write-ahead logged, crash-recoverable) sessions are a
//! **builder mode** since the unified [`crate::builder::SessionBuilder`]
//! API: `engine.session_builder(app, store, scheme).durable(dir).open()`
//! replaces [`Engine::durable_session`], and appending `.recover()`
//! replaces [`Engine::recover`].  The wrappers below keep the exact
//! semantics of the old entry points (recover-or-create over a directory,
//! WAL-append before routing, seal-before-dispatch, epoch-stamped
//! checkpoints) — they are one-line forwards — but are deprecated so new
//! code converges on the builder.
//!
//! The mechanics of durable sessions are documented on
//! [`crate::builder::SessionBuilder::durable`] and
//! [`crate::builder::SessionBuilder::recover`]; the replay path lives in
//! `builder.rs`.

use std::path::Path;
use std::sync::Arc;

use tstream_recovery::WalPayload;
use tstream_state::{StateResult, StateStore};
use tstream_txn::Application;

use crate::engine::{Engine, Scheme};
use crate::session::Session;

/// The pre-builder name of a durable [`Session`], kept for source
/// compatibility.  Durable sessions are ordinary [`Session`]s now — the
/// builder's `.durable(dir)` mode — so this is a plain alias.
#[deprecated(
    since = "0.6.0",
    note = "use `Engine::session_builder(..).durable(dir).open()`, which yields the unified \
            `Session` type"
)]
pub type DurableSession<'e, A> = Session<'e, A>;

impl Engine {
    /// Open a **durable session** over `dir`.
    ///
    /// Deprecated: this forwards to
    /// [`Engine::session_builder`]`(..).durable(dir).open()` and keeps its
    /// exact semantics — on a fresh directory it starts an empty log; on a
    /// directory with existing durability state it restores, replays and
    /// resumes, so one entry point serves both the `--durable` and
    /// `--recover` paths.
    #[deprecated(
        since = "0.6.0",
        note = "use `engine.session_builder(app, store, scheme).durable(dir).open()` instead"
    )]
    pub fn durable_session<'e, A: Application>(
        &'e self,
        dir: impl AsRef<Path>,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> StateResult<Session<'e, A>>
    where
        A::Payload: WalPayload,
    {
        self.session_builder(app, store, scheme).durable(dir).open()
    }

    /// Recover a crashed durable run from `dir` and return the live session.
    ///
    /// Deprecated: this forwards to
    /// [`Engine::session_builder`]`(..).durable(dir).recover().open()` and
    /// keeps its exact semantics — restore the newest epoch-stamped
    /// checkpoint, replay the surviving WAL segments through the normal
    /// streaming path, feed the unsealed tail back into the forming batch,
    /// and resume live ingestion, idempotently and exactly-once.
    #[deprecated(
        since = "0.6.0",
        note = "use `engine.session_builder(app, store, scheme).durable(dir).recover().open()` \
                instead"
    )]
    pub fn recover<'e, A: Application>(
        &'e self,
        dir: impl AsRef<Path>,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> StateResult<Session<'e, A>>
    where
        A::Payload: WalPayload,
    {
        self.session_builder(app, store, scheme)
            .durable(dir)
            .recover()
            .open()
    }
}
