//! Durable streaming sessions: crash-restartable ingestion with
//! exactly-once results.
//!
//! A [`DurableSession`] wraps the normal [`StreamSession`] with the
//! write-ahead input log of `tstream-recovery`:
//!
//! * every [`DurableSession::push`] appends the encoded event to the active
//!   WAL segment **before** routing it;
//! * when the punctuation closes a batch, the segment **seals** (fsync per
//!   [`crate::EngineConfig::fsync`]) *before* the batch is dispatched, so a
//!   batch can only execute once its input is durable;
//! * at the end-of-batch barrier the executor leader writes an
//!   **epoch-stamped checkpoint** every [`crate::EngineConfig::checkpoint_every`]
//!   batches and truncates the WAL segments the checkpoint covers.
//!
//! [`Engine::recover`] reopens a durability directory after a crash (or for
//! the first time — a fresh directory is simply an empty log): it restores
//! the newest checkpoint into the store, replays the surviving sealed
//! segments through the normal session path — one segment, one batch, so
//! batch formation and routing are identical to the original run — feeds
//! the unsealed tail back into the forming batch, and returns a live
//! session.  Because replay starts from the checkpointed state, it is
//! idempotent: crash during recovery and the same procedure converges, and
//! the recovered run's final store state and commit/abort counts are
//! byte-identical to a run that never crashed.

use std::path::Path;
use std::sync::Arc;

use tstream_recovery::{
    read_segment, DurableLog, DurableMeta, RecoveryCoordinator, RecoveryOptions, WalPayload,
};
use tstream_state::{StateResult, StateStore};
use tstream_txn::Application;

use crate::engine::{Durability, Engine, RunReport, Scheme};
use crate::session::StreamSession;

/// A crash-restartable [`StreamSession`]: inputs are WAL-logged before
/// routing, state is checkpointed per epoch, and results are exactly-once
/// across [`Engine::recover`].
///
/// Like the session it wraps, it holds the engine's exclusive run lease
/// until dropped or finished with [`DurableSession::report`].
pub struct DurableSession<'e, A: Application>
where
    A::Payload: WalPayload,
{
    /// `None` only after `report` consumed the inner session.
    inner: Option<StreamSession<'e, A>>,
    log: Arc<DurableLog>,
}

impl<'e, A: Application> DurableSession<'e, A>
where
    A::Payload: WalPayload,
{
    pub(crate) fn open(
        engine: &'e Engine,
        dir: &Path,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> StateResult<Self> {
        let config = engine.config();
        let recovered = RecoveryCoordinator::new(dir)
            .options(RecoveryOptions {
                fsync: config.fsync,
                checkpoint_every: config.checkpoint_every.max(1) as u64,
                retain: 2,
                // Epoch alignment assumes one segment = one punctuation
                // batch, so the interval is pinned to the directory.
                meta: Some(DurableMeta {
                    punctuation_interval: config.punctuation_interval.max(1) as u64,
                }),
            })
            .open()?;
        // Restore the checkpointed state before the session resets the
        // store's synchronisation state and replay re-executes on top.
        if let Some(snapshot) = &recovered.snapshot {
            snapshot.restore(store)?;
        }
        let log = Arc::new(recovered.log);
        let mut inner =
            StreamSession::open(engine, app, store, scheme, Durability::Wal(log.clone()));

        // Replay surviving sealed segments through the normal path.  Every
        // sealed segment was cut at a punctuation (or an explicit flush), so
        // it replays as exactly one batch — forcing the partial dispatch at
        // each segment end reproduces the original batch boundaries, and
        // with them routing and results.  Nothing is re-appended to the WAL:
        // these events are already durable.
        for info in &recovered.sealed_segments {
            let decoded = read_segment::<A::Payload>(&info.path)?;
            for payload in decoded.events {
                if let Some(batch) = inner.ingest(payload) {
                    inner.dispatch_now(batch);
                }
            }
            if let Some(batch) = inner.take_partial() {
                inner.dispatch_now(batch);
            }
        }
        // The unsealed tail re-enters the forming batch; the log keeps
        // appending to that very segment, so alignment is preserved.  If the
        // crash hit between batch completion and seal, the tail already
        // holds a full batch: seal it now, then dispatch.
        let mut session = DurableSession {
            inner: Some(inner),
            log,
        };
        if let Some(info) = &recovered.pending_segment {
            let decoded = read_segment::<A::Payload>(&info.path)?;
            for payload in decoded.events {
                session.ingest_logged(payload)?;
            }
        }
        Ok(session)
    }

    fn session(&mut self) -> &mut StreamSession<'e, A> {
        self.inner
            .as_mut()
            .expect("inner session only vacates in report()")
    }

    /// Route one already-logged event, sealing + dispatching at punctuation.
    ///
    /// A completed batch is dispatched even when the seal fails: its events
    /// are already routed into the run, so dropping the batch would fork the
    /// live results away from what recovery reproduces.  The seal error is
    /// still reported — durability is degraded (a crash would replay these
    /// events from the unsealed tail) but results stay exactly-once.
    fn ingest_logged(&mut self, payload: A::Payload) -> StateResult<()> {
        let session = self.session();
        if let Some(batch) = session.ingest(payload) {
            let sealed = self.log.seal();
            self.session().dispatch_now(batch);
            sealed?;
        }
        Ok(())
    }

    /// Ingest one event durably: append it to the WAL, then stamp and route
    /// it; when it completes a punctuation batch, the WAL segment seals
    /// (made durable per the fsync policy) before the batch is dispatched.
    ///
    /// # Errors
    ///
    /// An `Err` from the WAL *append* means the event is **not** durable and
    /// was not routed — the producer may retry it.  An `Err` from *sealing*
    /// is reported after the completed batch was dispatched anyway (see
    /// `ingest_logged`): the event is routed and must **not** be retried;
    /// only its durability is degraded until the next successful seal or
    /// checkpoint.
    pub fn push(&mut self, payload: A::Payload) -> StateResult<()> {
        self.log.append(&payload)?;
        self.ingest_logged(payload)
    }

    /// Seal and dispatch the partially filled batch (if any) and block until
    /// everything dispatched has been fully processed; the store and the
    /// durability directory then both reflect every event pushed so far.
    ///
    /// Like [`DurableSession::push`], a seal failure is reported only after
    /// the partial batch was dispatched — results never fork from the log.
    ///
    /// # Panics
    ///
    /// Re-raises executor panics like [`StreamSession::flush`].
    pub fn flush(&mut self) -> StateResult<()> {
        let session = self.session();
        let sealed = match session.take_partial() {
            Some(batch) => {
                let sealed = self.log.seal();
                self.session().dispatch_now(batch);
                sealed.map(|_| ())
            }
            None => Ok(()),
        };
        self.session().drain();
        sealed
    }

    /// Flush and aggregate into a [`RunReport`], releasing the engine's run
    /// lease.  The report's `events` / `committed` / `rejected` are
    /// cumulative across recovery: counts restored from the checkpoint
    /// manifest plus everything this session replayed and processed live —
    /// i.e. identical to an uninterrupted run over the same input.
    pub fn report(mut self) -> StateResult<RunReport> {
        self.flush()?;
        let inner = self.inner.take().expect("report runs once");
        let mut report = inner.report();
        let base = self.log.base();
        report.events += base.events;
        report.committed += base.committed;
        report.rejected += base.rejected;
        report.wal_bytes = self.log.wal_bytes();
        Ok(report)
    }

    /// Events this session has ingested, recovery included: the events
    /// covered by the restored checkpoint plus everything replayed from the
    /// WAL plus everything pushed live.  A resuming producer feeds
    /// `input[ingested()..]`.
    pub fn ingested(&self) -> u64 {
        let pushed = self.inner.as_ref().map_or(0, |s| s.pushed());
        self.log.base().events + pushed
    }

    /// Batches dispatched to the executor pool by this session (replayed
    /// batches included; checkpoint-covered batches are not).
    pub fn batches_dispatched(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.batches_dispatched())
    }

    /// The durability log backing this session.
    pub fn log(&self) -> &Arc<DurableLog> {
        &self.log
    }
}

impl<A: Application> Drop for DurableSession<'_, A>
where
    A::Payload: WalPayload,
{
    fn drop(&mut self) {
        // Seal the partial batch before the inner session's drop dispatches
        // it, so WAL epochs stay aligned with executed batches even on an
        // abandoning drop.  (Best effort: on a seal error the batch still
        // executes; the next open truncates the then-unsealed tail back into
        // the forming batch, which only re-executes from the checkpoint —
        // never double-applies.)
        if let Some(inner) = self.inner.as_mut() {
            if !std::thread::panicking() {
                if let Some(batch) = inner.take_partial() {
                    let _ = self.log.seal();
                    inner.dispatch_now(batch);
                }
            }
        }
    }
}

impl Engine {
    /// Open a **durable session** over `dir`: a streaming session whose
    /// inputs are write-ahead logged and whose state is checkpointed with
    /// epoch manifests, so the run can be crash-recovered with
    /// [`Engine::recover`].
    ///
    /// On a fresh directory this starts an empty log; on a directory with
    /// existing durability state it behaves exactly like [`Engine::recover`]
    /// (restore + replay + resume), so callers can use one entry point for
    /// both the `--durable` and `--recover` paths.
    ///
    /// `store` must be freshly built with the run's schema (and shard
    /// count); the recovered snapshot overwrites every committed value.
    pub fn durable_session<'e, A: Application>(
        &'e self,
        dir: impl AsRef<Path>,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> StateResult<DurableSession<'e, A>>
    where
        A::Payload: WalPayload,
    {
        DurableSession::open(self, dir.as_ref(), app, store, scheme)
    }

    /// Recover a crashed durable run from `dir` and return the live session:
    /// restores the newest epoch-stamped checkpoint into `store`, replays
    /// the surviving WAL segments through the normal streaming path
    /// (dual-mode scheduling unchanged), feeds the unsealed tail back into
    /// the forming batch, and resumes live ingestion.
    ///
    /// Recovery is idempotent — crash during recovery and calling this again
    /// converges — and exactly-once: the recovered final state and the
    /// cumulative counts of [`DurableSession::report`] are byte-identical to
    /// an uninterrupted run over the same input.
    pub fn recover<'e, A: Application>(
        &'e self,
        dir: impl AsRef<Path>,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> StateResult<DurableSession<'e, A>>
    where
        A::Payload: WalPayload,
    {
        self.durable_session(dir, app, store, scheme)
    }
}
