//! The execution engine.
//!
//! [`Engine::run`] drives a full benchmark run: it stamps the input events,
//! splits them into punctuation-delimited batches, round-robin shuffles each
//! batch over the executors (Section V) and processes them under the selected
//! scheme:
//!
//! * **eager schemes** (No-Lock / LOCK / MVLK / PAT) follow the coarse-grained
//!   paradigm of the prior work: each executor fully processes one event —
//!   pre-process, state transaction, post-process — before the next;
//! * **TStream** follows dual-mode scheduling (Section IV-B): executors
//!   decompose and postpone the transactions during compute mode, switch
//!   together into state-access mode at every punctuation, process the
//!   operation chains in parallel, then post-process the cached events.
//!
//! The engine measures everything the paper's figures need: throughput,
//! end-to-end latency percentiles, the per-component time breakdown and the
//! compute-mode / state-access-mode split.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tstream_state::checkpoint::Checkpointer;
use tstream_state::{ShardRouter, StateStore, MAX_SHARDS};
use tstream_stream::barrier::CyclicBarrier;
use tstream_stream::event::Event;
use tstream_stream::executor::{ExecutorId, ExecutorLayout};
use tstream_stream::metrics::{Breakdown, Component};
use tstream_stream::partition::EventRouting;
use tstream_stream::progress::ProgressController;
use tstream_stream::sink::{LatencyStats, Sink};
use tstream_txn::{Application, EagerScheme, ExecEnv, StateTransaction, TxnBuilder, TxnDescriptor};

use crate::chains::ChainPoolSet;
use crate::config::EngineConfig;
use crate::restructure::{self, BatchAbortLog, ChainStats, RestructureContext};

/// Which execution scheme a run uses.
#[derive(Clone)]
pub enum Scheme {
    /// One of the baseline schemes, executed eagerly.
    Eager(Arc<dyn EagerScheme>),
    /// TStream's dual-mode scheduling + dynamic restructuring execution.
    TStream,
}

impl Scheme {
    /// Display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Eager(s) => s.name(),
            Scheme::TStream => "TStream",
        }
    }
}

impl std::fmt::Debug for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scheme({})", self.name())
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheme name.
    pub scheme: String,
    /// Application name.
    pub app: String,
    /// Number of executors used.
    pub executors: usize,
    /// Punctuation interval used.
    pub punctuation_interval: usize,
    /// Total input events processed.
    pub events: u64,
    /// Events whose transaction committed.
    pub committed: u64,
    /// Events rejected because their transaction aborted.
    pub rejected: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end latency statistics.
    pub latency: LatencyStats,
    /// Aggregated per-component time breakdown (sum over executors).
    pub breakdown: Breakdown,
    /// Total executor time spent in compute mode (pre/post-processing).
    pub compute_time: Duration,
    /// Total executor time spent in state-access mode (TStream only).
    pub state_access_time: Duration,
    /// Chain-processing statistics (TStream only).
    pub chain_stats: ChainStats,
    /// Operation chains routed to each state shard, summed over every batch
    /// of the run (TStream only; all zeros under eager schemes).  Length
    /// equals the engine's `num_shards`.
    pub per_shard_chains: Vec<u64>,
    /// Number of durability checkpoints written during the run (zero unless a
    /// [`Checkpointer`] was attached to the engine).
    pub checkpoints: u64,
}

impl RunReport {
    /// Throughput in thousands of events per second (the unit of Figure 8).
    pub fn throughput_keps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.elapsed.as_secs_f64() / 1_000.0
    }

    /// Fraction of executor time spent in compute mode (the statistic quoted
    /// in Section VI-A: 39 % for TP, 29 % for SL, 22 % for OB, 13 % for GS).
    pub fn compute_mode_share(&self) -> f64 {
        let total = self.compute_time + self.state_access_time + self.breakdown.sync;
        if total.is_zero() {
            return 0.0;
        }
        self.compute_time.as_secs_f64() / total.as_secs_f64()
    }
}

/// Per-executor results collected at the end of a run.
struct ExecutorResult {
    sink: Sink,
    breakdown: Breakdown,
    compute_time: Duration,
    access_time: Duration,
    committed: u64,
    rejected: u64,
    chain_stats: ChainStats,
    checkpoints: u64,
}

/// One punctuation-delimited batch, already shuffled over executors.
struct Batch<P> {
    per_executor: Vec<Vec<Event<P>>>,
    descriptors: Vec<TxnDescriptor>,
}

/// The TStream / baseline execution engine.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    checkpointer: Option<Arc<Checkpointer>>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            checkpointer: None,
        }
    }

    /// Attach a durability checkpointer (Section IV-D): the committed state is
    /// replicated to disk at every punctuation boundary, before the executors
    /// resume compute mode.
    pub fn with_checkpointer(mut self, checkpointer: Arc<Checkpointer>) -> Self {
        self.checkpointer = Some(checkpointer);
        self
    }

    /// The attached checkpointer, if any.
    pub fn checkpointer(&self) -> Option<&Arc<Checkpointer>> {
        self.checkpointer.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Run `payloads` through `app` on top of `store` under `scheme`.
    pub fn run<A: Application>(
        &self,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        payloads: Vec<A::Payload>,
        scheme: &Scheme,
    ) -> RunReport {
        let executors = self.config.executors.max(1);
        let layout = ExecutorLayout::new(executors, self.config.cores_per_socket);
        let interval = self.config.punctuation_interval.max(1);
        let num_shards = self.config.num_shards.clamp(1, MAX_SHARDS as usize) as u32;
        let shard_router =
            ShardRouter::new(num_shards).expect("clamped shard count is always valid");

        // ---- Generation (the Parser operator): stamp events, derive the
        // determined read/write sets, split into punctuation batches and
        // assign each batch's events to executors — round-robin shuffled
        // (Section V) or, with shard-affine routing, sent to the executor
        // owning the shard of the event's primary key.
        let progress = ProgressController::new(interval as u64);
        let total_events = payloads.len() as u64;
        let mut batches: Vec<Batch<A::Payload>> = Vec::new();
        let mut current = Batch {
            per_executor: (0..executors).map(|_| Vec::new()).collect(),
            descriptors: Vec::with_capacity(interval),
        };
        let mut in_batch = 0usize;
        for payload in payloads {
            let event = progress.stamp(payload);
            let rw_set = app.read_write_set(&event.payload);
            let target = match self.config.event_routing {
                EventRouting::RoundRobin => in_batch % executors,
                EventRouting::ShardAffine => rw_set
                    .primary()
                    .map(|state| {
                        layout
                            .executor_for_shard(shard_router.shard_of(state.key).0)
                            .index()
                    })
                    .unwrap_or(in_batch % executors),
            };
            current.descriptors.push(TxnDescriptor {
                ts: event.ts,
                rw_set,
            });
            current.per_executor[target].push(event);
            in_batch += 1;
            if in_batch == interval {
                let _punct = progress.punctuate();
                batches.push(std::mem::replace(
                    &mut current,
                    Batch {
                        per_executor: (0..executors).map(|_| Vec::new()).collect(),
                        descriptors: Vec::with_capacity(interval),
                    },
                ));
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            let _punct = progress.punctuate();
            batches.push(current);
        }

        // ---- Shared run state.
        let barrier = CyclicBarrier::new(executors);
        let pools = ChainPoolSet::new(self.config.tstream.placement, layout, num_shards);
        let shard_chains: Mutex<Vec<u64>> = Mutex::new(vec![0; num_shards as usize]);
        let abort_log = BatchAbortLog::new();
        if let Scheme::Eager(s) = scheme {
            s.reset();
        }
        store.reset_sync();

        // ---- Execute.
        let started = Instant::now();
        let results: Vec<ExecutorResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..executors)
                .map(|e| {
                    let app = app.clone();
                    let store = store.clone();
                    let scheme = scheme.clone();
                    let barrier = &barrier;
                    let pools = &pools;
                    let shard_chains = &shard_chains;
                    let abort_log = &abort_log;
                    let batches = &batches;
                    let config = self.config;
                    let checkpointer = self.checkpointer.clone();
                    scope.spawn(move || {
                        let env = ExecEnv {
                            executor: ExecutorId(e),
                            layout,
                            numa: config.numa,
                        };
                        match scheme {
                            Scheme::Eager(scheme) => run_eager_executor(
                                e,
                                &app,
                                &store,
                                &scheme,
                                env,
                                barrier,
                                batches,
                                checkpointer.as_deref(),
                            ),
                            Scheme::TStream => run_tstream_executor(
                                e,
                                &app,
                                &store,
                                env,
                                barrier,
                                pools,
                                shard_chains,
                                abort_log,
                                batches,
                                &config,
                                checkpointer.as_deref(),
                            ),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();

        // ---- Aggregate.
        let mut breakdown = Breakdown::new();
        let mut compute_time = Duration::ZERO;
        let mut access_time = Duration::ZERO;
        let mut committed = 0;
        let mut rejected = 0;
        let mut chain_stats = ChainStats::default();
        let mut checkpoints = 0;
        let mut sinks = Vec::with_capacity(results.len());
        for r in results {
            breakdown += r.breakdown;
            compute_time += r.compute_time;
            access_time += r.access_time;
            committed += r.committed;
            rejected += r.rejected;
            chain_stats.merge(&r.chain_stats);
            checkpoints += r.checkpoints;
            sinks.push(r.sink);
        }
        RunReport {
            scheme: scheme.name().to_owned(),
            app: app.name().to_owned(),
            executors,
            punctuation_interval: interval,
            events: total_events,
            committed,
            rejected,
            elapsed,
            latency: Sink::merge(sinks),
            breakdown,
            compute_time,
            state_access_time: access_time,
            chain_stats,
            per_shard_chains: shard_chains.into_inner(),
            checkpoints,
        }
    }
}

/// Build the state transaction for one event (pre-process + state access).
fn build_transaction<A: Application>(
    app: &A,
    ts: u64,
    payload: &A::Payload,
) -> (StateTransaction, tstream_txn::BlotterHandle) {
    let mut builder = TxnBuilder::new(ts);
    if app.pre_process(payload) {
        app.state_access(payload, &mut builder);
    }
    builder.build()
}

/// Executor main loop for the eager (baseline) schemes.
#[allow(clippy::too_many_arguments)]
fn run_eager_executor<A: Application>(
    index: usize,
    app: &Arc<A>,
    store: &Arc<StateStore>,
    scheme: &Arc<dyn EagerScheme>,
    env: ExecEnv,
    barrier: &CyclicBarrier,
    batches: &[Batch<A::Payload>],
    checkpointer: Option<&Checkpointer>,
) -> ExecutorResult {
    let mut sink = Sink::new();
    let mut breakdown = Breakdown::new();
    let mut compute_time = Duration::ZERO;
    let mut committed = 0u64;
    let mut rejected = 0u64;
    let mut checkpoints = 0u64;

    for batch in batches {
        // Enter the batch together; the leader registers the batch with the
        // scheme (counter bookkeeping derived from read/write sets).
        let (leader, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);
        if leader {
            scheme.prepare_batch(&batch.descriptors);
        }
        let (_, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);

        let t_batch = Instant::now();
        for event in &batch.per_executor[index] {
            let arrival = Instant::now();
            let (txn, blotter) = build_transaction(app.as_ref(), event.ts, &event.payload);
            let outcome = scheme.execute(&txn, store, &env, &mut breakdown);
            let _ = app.post_process(&event.payload, &blotter);
            if outcome.is_committed() && !blotter.is_aborted() {
                committed += 1;
                sink.emit(arrival);
            } else {
                rejected += 1;
                sink.reject();
            }
        }
        compute_time += t_batch.elapsed();

        // Leave the batch together; the leader runs end-of-batch work
        // (e.g. MVLK's version garbage collection) and, if durability is
        // enabled, replicates the committed state to disk (Section IV-D).
        let (leader, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);
        if leader {
            scheme.end_batch(store);
            if let Some(cp) = checkpointer {
                let t = Instant::now();
                if cp.checkpoint(store).is_ok() {
                    checkpoints += 1;
                }
                breakdown.charge(Component::Others, t.elapsed());
            }
        }
    }

    ExecutorResult {
        sink,
        breakdown,
        compute_time,
        access_time: Duration::ZERO,
        committed,
        rejected,
        chain_stats: ChainStats::default(),
        checkpoints,
    }
}

/// Executor main loop for TStream's dual-mode scheduling.
#[allow(clippy::too_many_arguments)]
fn run_tstream_executor<A: Application>(
    index: usize,
    app: &Arc<A>,
    store: &Arc<StateStore>,
    env: ExecEnv,
    barrier: &CyclicBarrier,
    pools: &ChainPoolSet,
    shard_chains: &Mutex<Vec<u64>>,
    abort_log: &BatchAbortLog,
    batches: &[Batch<A::Payload>],
    config: &EngineConfig,
    checkpointer: Option<&Checkpointer>,
) -> ExecutorResult {
    let mut sink = Sink::new();
    let mut breakdown = Breakdown::new();
    let mut compute_time = Duration::ZERO;
    let mut access_time = Duration::ZERO;
    let mut committed = 0u64;
    let mut rejected = 0u64;
    let mut chain_stats = ChainStats::default();
    let mut checkpoints = 0u64;
    let assignment = pools.assignment(env.executor);

    for batch in batches {
        // ---- Compute mode: pre-process events, decompose and postpone
        // their transactions, cache the events for post-processing.
        let (_, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);

        let t_compute = Instant::now();
        let my_events = &batch.per_executor[index];
        let mut cached: Vec<(Instant, &Event<A::Payload>, tstream_txn::BlotterHandle)> =
            Vec::with_capacity(my_events.len());
        for event in my_events {
            let arrival = Instant::now();
            let (txn, blotter) = build_transaction(app.as_ref(), event.ts, &event.payload);
            // Dynamic transaction decomposition (Section IV-C.1): one chain
            // insert per operation; chain-level dependency edges are recorded
            // as we go.
            for op in txn.ops {
                // Cross-pool chain insertions count as remote memory accesses
                // only when the NUMA model is enabled (they are ordinary local
                // inserts on a single-socket machine).
                let remote_insert =
                    env.numa.enabled && pools.is_remote_insert(env.executor, op.target);
                let t_insert = Instant::now();
                let chain = pools.chain_for(op.target);
                if let Some(dep) = op.dependency {
                    chain.add_dependency(dep);
                    pools.chain_for(dep).mark_depended_upon();
                }
                chain.insert(op);
                let spent = t_insert.elapsed();
                breakdown.charge(
                    if remote_insert {
                        Component::Rma
                    } else {
                        Component::Others
                    },
                    spent,
                );
            }
            cached.push((arrival, event, blotter));
        }
        compute_time += t_compute.elapsed();

        // ---- TXN_START: first barrier — all executors must have finished
        // registering their postponed transactions before state access
        // begins (Section IV-B.2).
        let (leader, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);
        if leader {
            for pool in pools.pools() {
                pool.prepare_tasks();
            }
            // Record the real shard placement of this batch's chains before
            // processing starts (the pools are recycled at the batch end).
            let mut acc = shard_chains.lock();
            for (total, count) in acc.iter_mut().zip(pools.chains_per_shard()) {
                *total += count as u64;
            }
        }
        let (_, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);

        // ---- State-access mode: process the operation chains in parallel.
        let t_access = Instant::now();
        let ctx = RestructureContext {
            pools,
            store,
            env,
            resolution: config.tstream.resolution,
            work_stealing: config.tstream.work_stealing,
            abort_log,
        };
        let (stats, versioned) = restructure::process_assigned(&ctx, assignment, &mut breakdown);
        chain_stats.merge(&stats);
        access_time += t_access.elapsed();

        // ---- Second barrier: post-processing must not start until every
        // postponed state access has been processed (or aborted).
        let (_, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);

        // Fold temporary versions of depended-upon states into the committed
        // values (safe: all processing finished at the barrier above).
        restructure::collapse_versioned(store, &versioned);

        // ---- Multi-write abort handling (Section IV-F): if any
        // multi-operation transaction aborted, its writes in other chains may
        // already have been applied.  All executors synchronise once more and
        // the leader rolls the batch back and replays it serially; the next
        // barrier below keeps everyone else waiting until the authoritative
        // results are in place.
        if abort_log.replay_needed() {
            let t_access = Instant::now();
            let (leader, waited) = barrier.wait();
            breakdown.charge(Component::Sync, waited);
            if leader {
                restructure::replay_batch_serially(store, pools, abort_log, &env, &mut breakdown);
            }
            access_time += t_access.elapsed();
        }

        // ---- Third barrier, then the leader recycles the chain pools (and
        // replicates the committed state to disk when durability is enabled,
        // Section IV-D) while the others post-process; the next batch's
        // compute mode cannot start before the leader reaches the next
        // batch-entry barrier.
        let (leader, waited) = barrier.wait();
        breakdown.charge(Component::Sync, waited);
        if leader {
            pools.clear_all();
            abort_log.clear_batch();
            if let Some(cp) = checkpointer {
                let t = Instant::now();
                if cp.checkpoint(store).is_ok() {
                    checkpoints += 1;
                }
                breakdown.charge(Component::Others, t.elapsed());
            }
        }

        // ---- Back in compute mode: post-process the cached events.
        let t_post = Instant::now();
        for (arrival, event, blotter) in cached {
            let _ = app.post_process(&event.payload, &blotter);
            if blotter.is_aborted() {
                rejected += 1;
                sink.reject();
            } else {
                committed += 1;
                sink.emit(arrival);
            }
        }
        compute_time += t_post.elapsed();
    }

    ExecutorResult {
        sink,
        breakdown,
        compute_time,
        access_time,
        committed,
        rejected,
        chain_stats,
        checkpoints,
    }
}
