//! The execution engine.
//!
//! The engine drives input events through a three-stage pipeline:
//!
//! 1. **Ingestion** — an online [`tstream_stream::source::BatchBuilder`]
//!    stamps each event at arrival time, derives its determined read/write
//!    set, routes it to an executor (round-robin or shard-affine) and closes
//!    a batch at every punctuation;
//! 2. **Execution** — a persistent pool of executor threads
//!    ([`crate::runtime::ExecutorPool`], spawned once per engine) processes
//!    the batches under the selected scheme:
//!    * **eager schemes** (No-Lock / LOCK / MVLK / PAT) follow the
//!      coarse-grained paradigm of the prior work: each executor fully
//!      processes one event — pre-process, state transaction, post-process —
//!      before the next;
//!    * **TStream** follows dual-mode scheduling (Section IV-B): executors
//!      decompose and postpone the transactions during compute mode, switch
//!      together into state-access mode at every punctuation, process the
//!      operation chains in parallel, then post-process the cached events;
//! 3. **Sink** — per-executor [`Sink`] shards record completions and
//!    end-to-end latencies, merged into the [`RunReport`].
//!
//! Continuous ingestion goes through [`Engine::session_builder`] (push /
//! flush / report; durable, recovering, adaptive and labelled sessions are
//! builder options).  Sessions of one engine run **concurrently**: the
//! pool's scheduler interleaves their punctuation batches round-robin with
//! per-session backpressure.  [`Engine::run`] streams a pre-collected input
//! through a session and is what the figure harnesses use.
//! [`Engine::run_offline`] keeps the seed's pre-materialized, scope-per-run
//! behaviour as a differential baseline — both paths execute the same
//! per-batch step functions, so they must produce identical results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tstream_obs::{clock, MetricsSnapshot, Obs, TraceEvent, TraceKind, NO_BATCH};
use tstream_recovery::{DurableLog, WalStats};
use tstream_state::checkpoint::{CheckpointManifest, Checkpointer};
use tstream_state::{ShardRouter, StateStore, TableId, MAX_SHARDS};
use tstream_stream::barrier::CyclicBarrier;
use tstream_stream::event::Event;
use tstream_stream::executor::{ExecutorId, ExecutorLayout};
use tstream_stream::metrics::{Breakdown, Component};
use tstream_stream::partition::EventRouting;
use tstream_stream::sink::{LatencyStats, Sink};
use tstream_stream::source::{BatchBuilder, SourceBatch};
use tstream_txn::exec::{execute_transaction_body, ValueMode};
use tstream_txn::{Application, EagerScheme, ExecEnv, StateTransaction, TxnBuilder, TxnDescriptor};

use crate::chains::ChainPoolSet;
use crate::config::EngineConfig;
use crate::restructure::{self, BatchAbortLog, ChainStats, RestructureContext};
use crate::runtime::ExecutorPool;
use crate::session::Session;

/// Which execution scheme a run uses.
#[derive(Clone)]
pub enum Scheme {
    /// One of the baseline schemes, executed eagerly.
    Eager(Arc<dyn EagerScheme>),
    /// TStream's dual-mode scheduling + dynamic restructuring execution.
    TStream,
}

impl Scheme {
    /// Display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Eager(s) => s.name(),
            Scheme::TStream => "TStream",
        }
    }
}

impl std::fmt::Debug for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scheme({})", self.name())
    }
}

/// How a run persists state at punctuation boundaries.
#[derive(Debug, Clone, Default)]
pub(crate) enum Durability {
    /// No durability: nothing is written to disk.
    #[default]
    None,
    /// Legacy snapshot-only durability ([`Engine::with_checkpointer`]): the
    /// committed state is replicated to disk every batch, but inputs are not
    /// logged, so a crash loses everything after the last checkpoint.
    Snapshot(Arc<Checkpointer>),
    /// Full write-ahead durability (durable sessions): inputs are WAL-logged
    /// before routing, epoch-stamped checkpoints truncate covered segments,
    /// and [`Engine::recover`] restores + replays after a crash.
    Wal(Arc<DurableLog>),
}

/// Result of one engine run (or one finished streaming session).
#[derive(Debug, Clone)]
#[must_use = "a report carries the run's results and should be inspected"]
pub struct RunReport {
    /// Scheme name.
    pub scheme: String,
    /// Application name.
    pub app: String,
    /// Label of the session that produced this report (set via
    /// [`crate::builder::SessionBuilder::label`]; `None` for unlabelled
    /// sessions and offline runs).  Makes multi-session benchmark output
    /// attributable.
    pub label: Option<String>,
    /// Number of state shards the run executed against (the engine's
    /// `num_shards`, clamped).
    pub shards: usize,
    /// Number of executors used.
    pub executors: usize,
    /// Punctuation interval used.
    pub punctuation_interval: usize,
    /// Total input events processed.
    pub events: u64,
    /// Events whose transaction committed.
    pub committed: u64,
    /// Events rejected because their transaction aborted.
    pub rejected: u64,
    /// Wall-clock duration of the run: first `push` to final flush for the
    /// pipelined paths, execution only for [`Engine::run_offline`].
    pub elapsed: Duration,
    /// End-to-end latency statistics.
    ///
    /// Since the pipelined runtime, latency is measured from the instant an
    /// event was stamped at ingestion ([`Event::arrival`] inside the
    /// [`BatchBuilder`]) to result emission — the true event-to-sink
    /// interval, including queueing.  The seed stamped the whole input
    /// up front and restarted the clock at processing time, which understated
    /// latency under backlog; `run_offline` still pre-stamps, so its reported
    /// latencies include the materialization skew and are only meaningful
    /// relative to each other.
    pub latency: LatencyStats,
    /// Aggregated per-component time breakdown (sum over executors).
    pub breakdown: Breakdown,
    /// Total executor time spent in compute mode (pre/post-processing).
    pub compute_time: Duration,
    /// Total executor time spent in state-access mode (TStream only).
    pub state_access_time: Duration,
    /// Chain-processing statistics (TStream only).
    pub chain_stats: ChainStats,
    /// Operation chains routed to each state shard, summed over every batch
    /// of the run (TStream only; all zeros under eager schemes).  Length
    /// equals the engine's `num_shards`.
    pub per_shard_chains: Vec<u64>,
    /// Number of durability checkpoints written during the run (zero unless a
    /// [`Checkpointer`] was attached to the engine or the run was a durable
    /// session).
    pub checkpoints: u64,
    /// Bytes appended to the write-ahead input log during the run (zero for
    /// non-durable runs) — the storage side of the durability tax.
    pub wal_bytes: u64,
    /// Punctuation batches that took the conflict-free fast path (TStream
    /// only): batches whose transactions have pairwise-disjoint read/write
    /// sets skip decomposition, chain construction and restructuring
    /// entirely and execute eagerly with per-event rollback.
    pub fast_path_batches: u64,
}

impl RunReport {
    /// Throughput in thousands of events per second (the unit of Figure 8).
    #[must_use]
    pub fn throughput_keps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.events as f64 / self.elapsed.as_secs_f64() / 1_000.0
    }

    /// Fraction of executor time spent in compute mode (the statistic quoted
    /// in Section VI-A: 39 % for TP, 29 % for SL, 22 % for OB, 13 % for GS).
    #[must_use]
    pub fn compute_mode_share(&self) -> f64 {
        let total = self.compute_time + self.state_access_time + self.breakdown.sync;
        if total.is_zero() {
            return 0.0;
        }
        self.compute_time.as_secs_f64() / total.as_secs_f64()
    }
}

/// Cumulative WAL counters at the last metrics drain (see
/// [`RunContext::drain_wal_activity`]).
#[derive(Default)]
struct WalSeen {
    bytes: u64,
    stats: WalStats,
}

/// Per-executor accumulators, carried across every batch of a run.
#[derive(Default)]
pub(crate) struct ExecutorState {
    pub(crate) sink: Sink,
    pub(crate) breakdown: Breakdown,
    pub(crate) compute_time: Duration,
    pub(crate) access_time: Duration,
    pub(crate) committed: u64,
    pub(crate) rejected: u64,
    pub(crate) chain_stats: ChainStats,
    pub(crate) checkpoints: u64,
    pub(crate) fast_batches: u64,
}

/// One punctuation-delimited batch as the engine consumes it: events split
/// per executor plus the transaction descriptors of the whole batch.
pub(crate) type EngineBatch<P> = SourceBatch<P, TxnDescriptor>;

/// Everything a run shares between its executors: the immutable run
/// parameters and the cross-executor synchronisation state.  Built once per
/// run / session; the per-batch step functions below borrow it.
pub(crate) struct RunContext<A: Application> {
    pub(crate) app: Arc<A>,
    pub(crate) store: Arc<StateStore>,
    pub(crate) scheme: Scheme,
    pub(crate) config: EngineConfig,
    pub(crate) layout: ExecutorLayout,
    label: Option<String>,
    barrier: CyclicBarrier,
    pools: ChainPoolSet,
    shard_chains: Mutex<Vec<u64>>,
    abort_log: BatchAbortLog,
    durability: Durability,
    /// The engine's observability state: metrics hub, flight recorder and
    /// post-mortem latch, shared by every run and session of the engine.
    pub(crate) obs: Arc<Obs>,
    /// Last WAL statistics drained into the metrics hub, so each drain folds
    /// only the delta in (the log's own counters are cumulative).
    wal_seen: Mutex<WalSeen>,
    /// Cumulative progress of this run, published by every executor before
    /// the durable-checkpoint barrier so the leader can stamp manifests with
    /// exact counts (only maintained under [`Durability::Wal`]).
    live_events: AtomicU64,
    live_committed: AtomicU64,
    live_rejected: AtomicU64,
}

impl<A: Application> RunContext<A> {
    /// Prepares the shared state of one run: resets the scheme counters and
    /// the store's synchronisation state, and builds barrier + chain pools
    /// for the engine's executor layout.
    pub(crate) fn new(
        engine: &Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
        durability: Durability,
        label: Option<String>,
    ) -> Self {
        let config = engine.config;
        let executors = config.executors.max(1);
        let layout = ExecutorLayout::new(executors, config.cores_per_socket);
        let num_shards = config.num_shards.clamp(1, MAX_SHARDS as usize) as u32;
        if let Scheme::Eager(s) = scheme {
            s.reset();
        }
        store.reset_sync();
        RunContext {
            app: app.clone(),
            store: store.clone(),
            scheme: scheme.clone(),
            config,
            layout,
            label,
            barrier: CyclicBarrier::new(executors),
            pools: ChainPoolSet::new(config.tstream.placement, layout, num_shards),
            shard_chains: Mutex::new(vec![0; num_shards as usize]),
            abort_log: BatchAbortLog::new(),
            durability,
            obs: engine.obs.clone(),
            wal_seen: Mutex::new(WalSeen::default()),
            live_events: AtomicU64::new(0),
            live_committed: AtomicU64::new(0),
            live_rejected: AtomicU64::new(0),
        }
    }

    /// Number of executors this run uses.
    pub(crate) fn executors(&self) -> usize {
        self.layout.executors
    }

    /// The run's session label, if any.
    pub(crate) fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Poison the run's barrier after a participant died: surviving
    /// executors blocked (or about to block) in a batch step panic instead
    /// of waiting forever for a party that will never arrive.
    pub(crate) fn poison(&self) {
        self.barrier.poison();
    }

    /// One barrier round, elided for single-executor runs: with one
    /// executor there is nobody to rendezvous with, every wait would return
    /// leader immediately, and the `SeqCst` round-trips per batch are pure
    /// overhead — so the sole executor *is* the leader, with zero waits.
    /// Poisoning still works: a single-executor run has no surviving
    /// sibling to unblock.
    #[inline]
    fn barrier_wait(&self, index: usize, batch: u64, state: &mut ExecutorState) -> bool {
        if self.layout.executors == 1 {
            return true;
        }
        let (leader, waited) = self.barrier.wait();
        state.breakdown.charge(Component::Sync, waited);
        self.obs.hub().barrier_wait(waited);
        self.obs.trace_exec(
            index,
            batch,
            TraceKind::BarrierRound {
                wait_ns: waited.as_nanos().min(u64::MAX as u128) as u64,
            },
        );
        leader
    }

    /// Process one batch on executor `index`, advancing its accumulators.
    /// Every executor of the run must call this for every batch, in the same
    /// order — the internal barriers keep them in lockstep, exactly like the
    /// per-run loops of the seed engine did.
    pub(crate) fn step(
        &self,
        index: usize,
        batch: &EngineBatch<A::Payload>,
        state: &mut ExecutorState,
    ) {
        let env = ExecEnv {
            executor: ExecutorId(index),
            layout: self.layout,
            numa: self.config.numa,
        };
        if index == 0 {
            self.obs.hub().batch_executed();
            self.obs
                .trace_exec(index, batch.punctuation.seq, TraceKind::BatchInjected);
        }
        match &self.scheme {
            Scheme::Eager(scheme) => self.eager_step(scheme, index, env, batch, state),
            Scheme::TStream => self.tstream_step(index, env, batch, state),
        }
    }

    /// Aggregate the per-executor accumulators into the run's report.
    pub(crate) fn aggregate(
        &self,
        states: Vec<ExecutorState>,
        elapsed: Duration,
        events: u64,
    ) -> RunReport {
        let mut breakdown = Breakdown::new();
        let mut compute_time = Duration::ZERO;
        let mut access_time = Duration::ZERO;
        let mut committed = 0;
        let mut rejected = 0;
        let mut chain_stats = ChainStats::default();
        let mut checkpoints = 0;
        let mut fast_path_batches = 0;
        let mut sinks = Vec::with_capacity(states.len());
        for s in states {
            breakdown += s.breakdown;
            compute_time += s.compute_time;
            access_time += s.access_time;
            committed += s.committed;
            rejected += s.rejected;
            chain_stats.merge(&s.chain_stats);
            checkpoints += s.checkpoints;
            fast_path_batches += s.fast_batches;
            sinks.push(s.sink);
        }
        RunReport {
            scheme: self.scheme.name().to_owned(),
            app: self.app.name().to_owned(),
            label: self.label.clone(),
            shards: self.config.num_shards.clamp(1, MAX_SHARDS as usize),
            executors: self.executors(),
            punctuation_interval: self.config.punctuation_interval.max(1),
            events,
            committed,
            rejected,
            elapsed,
            latency: Sink::merge(sinks),
            breakdown,
            compute_time,
            state_access_time: access_time,
            chain_stats,
            per_shard_chains: self.shard_chains.lock().clone(),
            checkpoints,
            wal_bytes: match &self.durability {
                Durability::Wal(log) => {
                    // Catch the tail of WAL activity (final seals, offline
                    // window syncs) that landed after the last leader drain.
                    self.drain_wal_activity(log);
                    log.wal_bytes()
                }
                _ => 0,
            },
            fast_path_batches,
        }
    }

    /// Durable end-of-batch bookkeeping, run by the leader once every
    /// executor has published its per-batch result deltas: account the
    /// batch's events, and — on the configured cadence — write an
    /// epoch-stamped checkpoint and truncate the WAL segments it covers.
    fn wal_leader_checkpoint(&self, batch: &EngineBatch<A::Payload>, state: &mut ExecutorState) {
        let Durability::Wal(log) = &self.durability else {
            return;
        };
        self.live_events
            .fetch_add(batch.events() as u64, Ordering::Relaxed);
        let epoch = log.epoch_base() + batch.punctuation.seq;
        // Replication hook: when a shipper (or a divergence check) asked for
        // epoch roots, hash the quiescent store once per batch — for *every*
        // epoch, not just checkpointed ones — so the standby can cross-check
        // each applied segment.  Costs nothing when nothing asked.
        if log.wants_epoch_roots() {
            log.record_epoch_root(epoch, tstream_state::state_root(&self.store));
        }
        if !log.should_checkpoint(epoch) {
            self.drain_wal_activity(log);
            return;
        }
        let t = clock::now();
        let base = log.base();
        let manifest = CheckpointManifest {
            epoch,
            events: base.events + self.live_events.load(Ordering::Relaxed),
            committed: base.committed + self.live_committed.load(Ordering::Relaxed),
            rejected: base.rejected + self.live_rejected.load(Ordering::Relaxed),
        };
        if log.checkpoint(&self.store, manifest).is_ok() {
            state.checkpoints += 1;
            self.obs.hub().checkpoint();
            self.obs
                .trace_wal(batch.punctuation.seq, TraceKind::Checkpointed { epoch });
        }
        self.drain_wal_activity(log);
        state.breakdown.charge(Component::Others, t.elapsed());
    }

    /// Fold the WAL's cumulative counters into the metrics hub as a delta
    /// since the previous drain.  Called by the leader at durable batch
    /// boundaries and once more at aggregation, so the hub's durability
    /// series track the log without the log ever holding an obs handle.
    fn drain_wal_activity(&self, log: &DurableLog) {
        if !self.obs.enabled() {
            return;
        }
        let bytes = log.wal_bytes();
        let stats = log.wal_stats();
        let mut seen = self.wal_seen.lock();
        let delta = stats.delta_since(&seen.stats);
        let bytes_delta = bytes.saturating_sub(seen.bytes);
        seen.bytes = bytes;
        seen.stats = stats;
        drop(seen);
        self.obs.hub().wal_activity(
            bytes_delta,
            delta.windows,
            delta.fsyncs,
            delta.fsync_ns,
            delta.seals,
            delta.truncated_segments,
        );
        if delta.truncated_segments > 0 {
            self.obs.trace_wal(
                NO_BATCH,
                TraceKind::Truncated {
                    segments: delta.truncated_segments.min(u32::MAX as u64) as u32,
                },
            );
        }
    }

    /// Publish one executor's per-batch result deltas for manifest stamping.
    fn publish_deltas(&self, committed: u64, rejected: u64) {
        self.live_committed.fetch_add(committed, Ordering::Relaxed);
        self.live_rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    /// Count and publish the outcome deltas of this executor's cached events
    /// (only meaningful once their commit/abort decisions are final).
    fn publish_cached_deltas(&self, cached: &[(&Event<A::Payload>, tstream_txn::BlotterHandle)]) {
        let (mut committed, mut rejected) = (0u64, 0u64);
        for (_, blotter) in cached {
            if blotter.is_aborted() {
                rejected += 1;
            } else {
                committed += 1;
            }
        }
        self.publish_deltas(committed, rejected);
    }

    /// Record one completed event with the sink: replayed batches count but
    /// are not latency-sampled (their arrival instant is the re-ingestion
    /// time, not the original arrival).
    fn sink_emit(sink: &mut Sink, replayed: bool, arrival: Instant) {
        if replayed {
            sink.emit_unsampled();
        } else {
            sink.emit(arrival);
        }
    }

    /// One batch of the eager (baseline) paradigm on executor `index`.
    fn eager_step(
        &self,
        scheme: &Arc<dyn EagerScheme>,
        index: usize,
        env: ExecEnv,
        batch: &EngineBatch<A::Payload>,
        state: &mut ExecutorState,
    ) {
        let seq = batch.punctuation.seq;
        // Enter the batch together; the leader registers the batch with the
        // scheme (counter bookkeeping derived from read/write sets).
        if self.barrier_wait(index, seq, state) {
            scheme.prepare_batch(&batch.descriptors);
        }
        self.barrier_wait(index, seq, state);

        let committed_before = state.committed;
        let rejected_before = state.rejected;
        let t_batch = clock::now();
        for event in &batch.per_executor[index] {
            let (txn, blotter) = resolved_transaction(self.app.as_ref(), batch, event);
            let outcome = scheme.execute(&txn, &self.store, &env, &mut state.breakdown);
            let _ = self.app.post_process(&event.payload, &blotter);
            if outcome.is_committed() && !blotter.is_aborted() {
                state.committed += 1;
                Self::sink_emit(&mut state.sink, batch.replayed, event.arrival);
            } else {
                state.rejected += 1;
                state.sink.reject();
            }
        }
        state.compute_time += t_batch.elapsed();
        let (committed, rejected) = (
            state.committed - committed_before,
            state.rejected - rejected_before,
        );
        self.publish_results(index, seq, committed, rejected);
        // Publish the batch's result deltas before the barrier so the leader
        // can stamp the checkpoint manifest with exact cumulative counts.
        if matches!(self.durability, Durability::Wal(_)) {
            self.publish_deltas(committed, rejected);
        }

        // Leave the batch together; the leader runs end-of-batch work
        // (e.g. MVLK's version garbage collection) and, if durability is
        // enabled, replicates the committed state to disk (Section IV-D).
        if self.barrier_wait(index, seq, state) {
            scheme.end_batch(&self.store);
            match &self.durability {
                Durability::None => {}
                Durability::Snapshot(cp) => {
                    let t = clock::now();
                    if cp.checkpoint(&self.store).is_ok() {
                        state.checkpoints += 1;
                        self.obs.hub().checkpoint();
                    }
                    state.breakdown.charge(Component::Others, t.elapsed());
                }
                Durability::Wal(_) => self.wal_leader_checkpoint(batch, state),
            }
        }
    }

    /// Record one executor's per-batch committed/rejected deltas with the
    /// metrics hub and the flight recorder.
    #[inline]
    fn publish_results(&self, index: usize, batch: u64, committed: u64, rejected: u64) {
        self.obs.hub().batch_published(committed, rejected);
        self.obs.trace_exec(
            index,
            batch,
            TraceKind::Published {
                committed: committed.min(u32::MAX as u64) as u32,
                rejected: rejected.min(u32::MAX as u64) as u32,
            },
        );
    }

    /// One batch of TStream's dual-mode scheduling on executor `index`.
    fn tstream_step(
        &self,
        index: usize,
        env: ExecEnv,
        batch: &EngineBatch<A::Payload>,
        state: &mut ExecutorState,
    ) {
        if batch.conflict_free {
            return self.tstream_fast_step(index, env, batch, state);
        }
        let seq = batch.punctuation.seq;
        let assignment = self.pools.assignment(env.executor);

        // ---- Compute mode: pre-process events, decompose and postpone
        // their transactions, cache the events for post-processing.
        self.barrier_wait(index, seq, state);

        // Remote chain insertions only exist when the NUMA model is on *and*
        // the layout spans several sockets; on a single socket every insert
        // is local, so the per-op classification timers (two clock reads per
        // operation) are skipped and insert time simply stays inside the
        // compute-mode window it already belongs to.
        let classify_remote = env.numa.enabled && self.layout.sockets() > 1;
        let t_compute = clock::now();
        let my_events = &batch.per_executor[index];
        let mut cached: Vec<(&Event<A::Payload>, tstream_txn::BlotterHandle)> =
            Vec::with_capacity(my_events.len());
        for event in my_events {
            let (txn, blotter) = resolved_transaction(self.app.as_ref(), batch, event);
            // Dynamic transaction decomposition (Section IV-C.1): one chain
            // insert per operation; chain-level dependency edges are recorded
            // as we go.
            for op in txn.ops {
                if !classify_remote {
                    let chain = self.pools.chain_for(op.target);
                    if let Some(dep) = op.dependency {
                        chain.add_dependency(dep);
                        self.pools.chain_for(dep).mark_depended_upon();
                    }
                    chain.insert(op);
                    continue;
                }
                let remote_insert = self.pools.is_remote_insert(env.executor, op.target);
                let t_insert = clock::now();
                let chain = self.pools.chain_for(op.target);
                if let Some(dep) = op.dependency {
                    chain.add_dependency(dep);
                    self.pools.chain_for(dep).mark_depended_upon();
                }
                chain.insert(op);
                let spent = t_insert.elapsed();
                state.breakdown.charge(
                    if remote_insert {
                        Component::Rma
                    } else {
                        Component::Others
                    },
                    spent,
                );
            }
            cached.push((event, blotter));
        }
        state.compute_time += t_compute.elapsed();

        // ---- TXN_START: first barrier — all executors must have finished
        // registering their postponed transactions before state access
        // begins (Section IV-B.2).
        if self.barrier_wait(index, seq, state) {
            // A single executor processes straight out of the pool shards (see
            // `RestructureContext::single_executor`); the sorted task list is
            // only needed to split work between several executors.
            if self.layout.executors > 1 {
                for pool in self.pools.pools() {
                    pool.prepare_tasks();
                }
            }
            // Record the real shard placement of this batch's chains before
            // processing starts (the pools are recycled at the batch end).
            let mut built = 0u64;
            let mut acc = self.shard_chains.lock();
            for (total, count) in acc.iter_mut().zip(self.pools.chains_per_shard()) {
                *total += count as u64;
                built += count as u64;
            }
            drop(acc);
            self.obs.hub().restructured_batch(built);
            self.obs.trace_exec(
                index,
                seq,
                TraceKind::Restructured {
                    chains: built.min(u32::MAX as u64) as u32,
                },
            );
        }
        self.barrier_wait(index, seq, state);

        // ---- State-access mode: process the operation chains in parallel.
        let t_access = clock::now();
        let ctx = RestructureContext {
            pools: &self.pools,
            store: &self.store,
            env,
            resolution: self.config.tstream.resolution,
            work_stealing: self.config.tstream.work_stealing,
            classify_remote,
            single_executor: self.layout.executors == 1,
            abort_log: &self.abort_log,
        };
        let (stats, versioned) =
            restructure::process_assigned(&ctx, assignment, &mut state.breakdown);
        state.chain_stats.merge(&stats);
        state.access_time += t_access.elapsed();

        // ---- Second barrier: post-processing must not start until every
        // postponed state access has been processed (or aborted).
        self.barrier_wait(index, seq, state);

        // Fold temporary versions of depended-upon states into the committed
        // values (safe: all processing finished at the barrier above).
        restructure::collapse_versioned(&self.store, &versioned);

        // ---- Multi-write abort handling (Section IV-F): if any
        // multi-operation transaction aborted, its writes in other chains may
        // already have been applied.  All executors synchronise once more and
        // the leader rolls the batch back and replays it serially; the next
        // barrier below keeps everyone else waiting until the authoritative
        // results are in place.
        //
        // The flag is captured once here — it is stable between the
        // processing barrier above and the leader's `clear_batch` below, so
        // every executor takes the same barrier path.
        let replay_needed = self.abort_log.replay_needed();
        if replay_needed {
            let t_access = clock::now();
            if self.barrier_wait(index, seq, state) {
                let replay = restructure::replay_batch_serially(
                    &self.store,
                    &self.pools,
                    &self.abort_log,
                    &env,
                    &mut state.breakdown,
                );
                self.obs.hub().aborts_replayed(replay.aborted as u64);
                self.obs.trace_exec(
                    index,
                    seq,
                    TraceKind::AbortReplay {
                        aborted: replay.aborted.min(u32::MAX as usize) as u32,
                    },
                );
            }
            state.access_time += t_access.elapsed();
        }

        // Without a serial replay, commit/abort outcomes are already final
        // (processing finished at the second barrier), so durable sessions
        // publish their result deltas *before* the recycle barrier and the
        // leader writes the epoch-stamped checkpoint inside the same round —
        // the common case pays three barriers per batch, durable or not.
        let durable = matches!(self.durability, Durability::Wal(_));
        if durable && !replay_needed {
            self.publish_cached_deltas(&cached);
        }

        // ---- Third barrier, then the leader recycles the chain pools (and
        // replicates the committed state to disk when durability is enabled,
        // Section IV-D) while the others post-process; the next batch's
        // compute mode cannot start before the leader reaches the next
        // batch-entry barrier.
        if self.barrier_wait(index, seq, state) {
            let recycled: u64 = self
                .pools
                .chains_per_shard()
                .iter()
                .map(|&c| c as u64)
                .sum();
            self.pools.clear_all();
            self.obs.hub().chains_recycled(recycled);
            self.abort_log.clear_batch();
            if let Durability::Snapshot(cp) = &self.durability {
                let t = clock::now();
                if cp.checkpoint(&self.store).is_ok() {
                    state.checkpoints += 1;
                    self.obs.hub().checkpoint();
                }
                state.breakdown.charge(Component::Others, t.elapsed());
            }
            if durable && !replay_needed {
                self.wal_leader_checkpoint(batch, state);
            }
        }

        // ---- Only a serially replayed batch still needs the extra barrier
        // round: its outcomes were rewritten by the leader up to the barrier
        // above, so the deltas can be published (and the checkpoint stamped)
        // only now.  Post-processing below happens concurrently with the
        // leader's disk write, exactly like the legacy snapshot path.
        if durable && replay_needed {
            self.publish_cached_deltas(&cached);
            if self.barrier_wait(index, seq, state) {
                self.wal_leader_checkpoint(batch, state);
            }
        }

        // ---- Back in compute mode: post-process the cached events.
        let committed_before = state.committed;
        let rejected_before = state.rejected;
        let t_post = clock::now();
        for (event, blotter) in cached {
            let _ = self.app.post_process(&event.payload, &blotter);
            if blotter.is_aborted() {
                state.rejected += 1;
                state.sink.reject();
            } else {
                state.committed += 1;
                Self::sink_emit(&mut state.sink, batch.replayed, event.arrival);
            }
        }
        state.compute_time += t_post.elapsed();
        self.publish_results(
            index,
            seq,
            state.committed - committed_before,
            state.rejected - rejected_before,
        );
    }

    /// The conflict-free fast path (taken when ingestion classified the
    /// batch's transactions as pairwise disjoint, see
    /// [`batch_is_conflict_free`]): no decomposition, no chains, no
    /// restructuring, no versioning.  Each executor runs its own events to
    /// completion with per-event rollback — with disjoint read/write sets
    /// every interleaving is conflict-equivalent to the timestamp order, so
    /// this produces exactly the schedule dynamic restructuring would.
    ///
    /// Barriers are paid only when durability needs a quiescent point; a
    /// plain conflict-free batch synchronises zero times.
    fn tstream_fast_step(
        &self,
        index: usize,
        env: ExecEnv,
        batch: &EngineBatch<A::Payload>,
        state: &mut ExecutorState,
    ) {
        let seq = batch.punctuation.seq;
        if index == 0 {
            state.fast_batches += 1;
            self.obs.hub().fast_path_batch();
            self.obs.trace_exec(index, seq, TraceKind::FastPath);
        }
        let committed_before = state.committed;
        let rejected_before = state.rejected;
        let mut access = Duration::ZERO;
        let t_batch = clock::now();
        for event in &batch.per_executor[index] {
            let (txn, blotter) = resolved_transaction(self.app.as_ref(), batch, event);
            if !txn.ops.is_empty() {
                let t_access = clock::now();
                // An `Err` marks the blotter aborted and rolls back this
                // event's own writes; disjointness keeps it from touching
                // anything another event read or wrote.
                let _ = execute_transaction_body(
                    &txn.ops,
                    &self.store,
                    &env,
                    ValueMode::Committed,
                    &mut state.breakdown,
                );
                access += t_access.elapsed();
            }
            let _ = self.app.post_process(&event.payload, &blotter);
            if blotter.is_aborted() {
                state.rejected += 1;
                state.sink.reject();
            } else {
                state.committed += 1;
                Self::sink_emit(&mut state.sink, batch.replayed, event.arrival);
            }
        }
        state.access_time += access;
        state.compute_time += t_batch.elapsed().saturating_sub(access);
        let (committed, rejected) = (
            state.committed - committed_before,
            state.rejected - rejected_before,
        );
        self.publish_results(index, seq, committed, rejected);

        // Durability is the only reason to synchronise: checkpoints need
        // every executor's writes (and, for WAL manifests, deltas) in place
        // before the leader touches the disk.  A plain conflict-free batch
        // pays no barrier at all.
        match &self.durability {
            Durability::None => {}
            Durability::Snapshot(cp) => {
                if self.barrier_wait(index, seq, state) {
                    let t = clock::now();
                    if cp.checkpoint(&self.store).is_ok() {
                        state.checkpoints += 1;
                        self.obs.hub().checkpoint();
                    }
                    state.breakdown.charge(Component::Others, t.elapsed());
                }
            }
            Durability::Wal(_) => {
                self.publish_deltas(committed, rejected);
                if self.barrier_wait(index, seq, state) {
                    self.wal_leader_checkpoint(batch, state);
                }
            }
        }
    }
}

/// The TStream / baseline execution engine.
///
/// The engine owns a persistent [`ExecutorPool`], spawned lazily on the
/// first run/session and reused — threads are spawned **once per engine**,
/// never per run, session or batch (`runtime_threads_spawned` makes that
/// verifiable).  Clones share the pool whether they are made before or
/// after the pool is spawned.
///
/// Sessions ([`Engine::session_builder`]) multiplex concurrently over the
/// pool: each session has its own barrier, accumulators and (for durable
/// sessions) epoch counters, and the pool's scheduler interleaves their
/// batches fairly.  Concurrent sessions must use disjoint stores and
/// eager-scheme instances — see [`crate::session::Session`].
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    checkpointer: Option<Arc<Checkpointer>>,
    /// The `Arc` is what clones share; the `OnceLock` is the lazy spawn.
    /// Keeping the cell itself shared means a clone made *before* the first
    /// run still uses the same pool as the original.
    pool: Arc<OnceLock<ExecutorPool>>,
    /// The engine's observability state (metrics hub + flight recorder +
    /// post-mortem latch), shared by clones like the pool.
    obs: Arc<Obs>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            checkpointer: None,
            pool: Arc::new(OnceLock::new()),
            obs: Arc::new(Obs::new(config.obs, config.executors.max(1))),
        }
    }

    /// Attach a durability checkpointer (Section IV-D): the committed state is
    /// replicated to disk at every punctuation boundary, before the executors
    /// resume compute mode.
    pub fn with_checkpointer(mut self, checkpointer: Arc<Checkpointer>) -> Self {
        self.checkpointer = Some(checkpointer);
        self
    }

    /// The attached checkpointer, if any.
    pub fn checkpointer(&self) -> Option<&Arc<Checkpointer>> {
        self.checkpointer.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's observability state, for layers (sessions, the WAL
    /// writer) that record into it directly.
    pub(crate) fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// A shared handle to the engine's observability aggregate, for
    /// out-of-crate layers (the replication shipper and standby) that record
    /// their own series into this engine's metrics hub.
    pub fn observability(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// Point-in-time copy of every metric series the engine maintains:
    /// ingestion, execution, durability, session gauges and the flight
    /// recorder's own counters.  Cumulative over the engine's lifetime,
    /// across runs and sessions; all zeros when the engine was built with
    /// [`tstream_obs::ObsConfig::disabled`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.metrics_snapshot()
    }

    /// The current metrics in Prometheus text exposition format (one
    /// `# HELP`/`# TYPE`/value stanza per series) — scrape-ready.
    pub fn metrics_text(&self) -> String {
        self.obs.metrics_text()
    }

    /// The current metrics as one flat JSON object (consumed by
    /// `bench_snapshot`'s observability section).
    pub fn metrics_json(&self) -> String {
        self.obs.metrics_json()
    }

    /// Drain the flight recorder: the last events of every runtime lane
    /// (executors, ingestion, WAL writer) merged into one chronological
    /// timeline.
    pub fn flight_recording(&self) -> Vec<TraceEvent> {
        self.obs.flight_recording()
    }

    /// How many post-mortem dumps this engine has emitted (0 or 1: the dump
    /// fires exactly once, on the first executor panic / barrier poisoning).
    pub fn post_mortem_count(&self) -> u64 {
        self.obs.post_mortem_count()
    }

    /// The stored post-mortem dump, if one fired.
    pub fn last_post_mortem(&self) -> Option<String> {
        self.obs.last_post_mortem()
    }

    /// The engine's persistent executor pool, spawning it on first use.
    pub(crate) fn pool(&self) -> &ExecutorPool {
        self.pool.get_or_init(|| {
            ExecutorPool::new(
                self.config.executors.max(1),
                self.config.pipeline_depth.max(1),
            )
        })
    }

    /// Executor threads this engine's runtime has spawned so far: `0` before
    /// the first run, the configured executor count from then on — however
    /// many runs, sessions and batches the engine serves.
    pub fn runtime_threads_spawned(&self) -> u64 {
        self.pool.get().map(|p| p.spawned()).unwrap_or(0)
    }

    /// The durability mode of plain (non-durable-session) runs: the legacy
    /// snapshot checkpointer if one is attached, none otherwise.
    pub(crate) fn legacy_durability(&self) -> Durability {
        match &self.checkpointer {
            Some(cp) => Durability::Snapshot(cp.clone()),
            None => Durability::None,
        }
    }

    /// Open a plain streaming session.
    ///
    /// Deprecated: this forwards to
    /// [`Engine::session_builder`]`(..).open()`; use the builder directly —
    /// it also composes durable mode, recovery, adaptive punctuation,
    /// per-session pipeline depth and labels.
    #[deprecated(
        since = "0.6.0",
        note = "use `engine.session_builder(app, store, scheme).open()` instead"
    )]
    pub fn session<'e, A: Application>(
        &'e self,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
    ) -> Session<'e, A> {
        self.session_builder(app, store, scheme)
            .open()
            .expect("plain sessions cannot fail to open")
    }

    /// Run `payloads` through `app` on top of `store` under `scheme`.
    ///
    /// This is a thin wrapper that streams the input through one plain
    /// [`Session`] built with [`Engine::session_builder`]: ingestion
    /// (stamping, routing, batch formation) overlaps execution, and the
    /// executor threads come from the engine's persistent pool.
    pub fn run<A: Application>(
        &self,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        payloads: Vec<A::Payload>,
        scheme: &Scheme,
    ) -> RunReport {
        let mut session = self
            .session_builder(app, store, scheme)
            .open()
            .expect("plain sessions cannot fail to open");
        for payload in payloads {
            session
                .push(payload)
                .expect("plain sessions cannot fail to push");
        }
        session
            .report()
            .expect("plain sessions cannot fail to report")
    }

    /// The seed's offline execution mode, kept as a differential baseline:
    /// pre-materialize every batch, then spawn one scoped thread per executor
    /// that loops over the batches.  Runs the same per-batch step functions
    /// as the pipelined path, so committed/rejected counts and final state
    /// must be byte-identical to [`Engine::run`]; only scheduling (and hence
    /// timing) differs.
    pub fn run_offline<A: Application>(
        &self,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        payloads: Vec<A::Payload>,
        scheme: &Scheme,
    ) -> RunReport {
        // Offline runs never touch the pool (scoped threads); like
        // concurrent sessions, they own the store and scheme instance they
        // run against, so they may execute alongside sessions on other
        // stores of the same engine.
        let ctx = RunContext::new(self, app, store, scheme, self.legacy_durability(), None);
        let total_events = payloads.len() as u64;
        let mut builder = self.batch_builder(app, store);
        let mut batches: Vec<EngineBatch<A::Payload>> = Vec::new();
        for payload in payloads {
            if let Some(batch) = builder.push(payload) {
                batches.push(batch);
            }
        }
        batches.extend(builder.finish());
        if matches!(scheme, Scheme::TStream) {
            let mut scratch = ConflictScratch::default();
            for batch in &mut batches {
                batch.conflict_free = batch_is_conflict_free(&batch.descriptors, &mut scratch);
            }
        }
        for batch in &batches {
            self.obs
                .hub()
                .batch_ingested(batch.events() as u64, batch.replayed);
            self.obs.trace_ingest(
                batch.punctuation.seq,
                TraceKind::BatchFormed {
                    events: batch.events().min(u32::MAX as usize) as u32,
                    replayed: batch.replayed,
                },
            );
        }

        let started = clock::now();
        let states: Vec<ExecutorState> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..ctx.executors())
                .map(|e| {
                    let ctx = &ctx;
                    let batches = &batches;
                    scope.spawn(move || {
                        let mut state = ExecutorState::default();
                        for batch in batches {
                            ctx.step(e, batch, &mut state);
                        }
                        state
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        ctx.aggregate(states, started.elapsed(), total_events)
    }

    /// Build the ingestion-side batch builder for a run over `app`: dense
    /// arrival-time stamping, the engine's routing policy applied per event,
    /// read/write sets derived once and carried as the batch's descriptors —
    /// with every set entry resolved to its record slot in `store`.
    ///
    /// Slot resolution here is the routing half of the slot-resolved fast
    /// path: it runs on the ingestion thread, overlapped with execution of
    /// the previous batch, so the per-operation index lookups leave the
    /// executors' critical path entirely (the determined read/write set —
    /// feature F2 — is what makes the slots knowable this early).
    pub(crate) fn batch_builder<A: Application>(
        &self,
        app: &Arc<A>,
        store: &Arc<StateStore>,
    ) -> BatchBuilder<A::Payload, TxnDescriptor> {
        let executors = self.config.executors.max(1);
        let layout = ExecutorLayout::new(executors, self.config.cores_per_socket);
        let interval = self.config.punctuation_interval.max(1);
        let num_shards = self.config.num_shards.clamp(1, MAX_SHARDS as usize) as u32;
        let shard_router =
            ShardRouter::new(num_shards).expect("clamped shard count is always valid");
        let routing = self.config.event_routing;
        let app = app.clone();
        let store = store.clone();
        BatchBuilder::new(
            executors,
            interval,
            Box::new(move |event: &Event<A::Payload>, in_batch: usize| {
                let rw_set = app.read_write_set(&event.payload);
                let target = match routing {
                    EventRouting::RoundRobin => in_batch % executors,
                    EventRouting::ShardAffine => rw_set
                        .primary()
                        .map(|state| {
                            layout
                                .executor_for_shard(shard_router.shard_of(state.key).0)
                                .index()
                        })
                        .unwrap_or(in_batch % executors),
                };
                let mut slots = Vec::with_capacity(rw_set.len());
                for (state, _) in rw_set.iter() {
                    slots.push(
                        store
                            .try_slot_of(TableId(state.table), state.key)
                            .unwrap_or(tstream_txn::INVALID_SLOT),
                    );
                }
                (
                    target,
                    TxnDescriptor {
                        ts: event.ts,
                        rw_set,
                        slots,
                    },
                )
            }),
        )
    }
}

/// Recycled scratch table for [`batch_is_conflict_free`]: an open-addressing
/// set of `(state hash, owning transaction)` pairs, sized to the batch and
/// reused across batches so classification allocates nothing in steady
/// state.
///
/// Only the 64-bit state hash is stored, never the state itself: two
/// *distinct* states colliding on their hash are (very rarely) misread as
/// the same state, which reports a conflict that is not there — the batch
/// then merely takes the general restructuring path, which is always
/// correct.  A real conflict can never be missed, because equal states
/// always hash equal.
#[derive(Default)]
pub(crate) struct ConflictScratch {
    /// `(state hash, descriptor index + 1)`; `(0, 0)` is the empty slot.
    slots: Vec<(u64, u32)>,
}

impl ConflictScratch {
    fn reset(&mut self, touched: usize) {
        let wanted = (touched * 2).next_power_of_two().max(64);
        if self.slots.len() < wanted {
            self.slots = vec![(0, 0); wanted];
        } else {
            self.slots.fill((0, 0));
        }
    }

    /// Record `state` as touched by transaction `txn`; returns `false` when
    /// another transaction already touched it (a conflict).
    fn insert(&mut self, state: tstream_stream::operator::StateRef, txn: u32) -> bool {
        // fx-style mix of (table, key) into one 64-bit hash.
        let mut h = state.key ^ ((state.table as u64) << 32);
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        let h = h.max(1); // keep 0 as the empty marker
        let mask = self.slots.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let (slot_hash, slot_txn) = self.slots[i];
            if slot_hash == 0 {
                self.slots[i] = (h, txn + 1);
                return true;
            }
            if slot_hash == h {
                // Same state: fine if it is the same transaction touching it
                // again (read + write of one key), a conflict otherwise.
                return slot_txn == txn + 1;
            }
            i = (i + 1) & mask;
        }
    }
}

/// Routing-time conflict classification: `true` when no state is touched by
/// two different transactions of the batch (strict pairwise disjointness of
/// the determined read/write sets).  Such a batch needs no ordering machinery
/// at all — any execution order is conflict-equivalent to the timestamp
/// order — so [`Scheme::TStream`] skips dynamic restructuring for it
/// entirely.  Derived from the routing descriptors alone (feature **F2**:
/// read/write sets are determined before any state is accessed), so the
/// classification happens on the ingestion thread, off the executors.
///
/// Single pass over the batch's read/write-set entries against a recycled
/// scratch table: O(ops) total, no per-descriptor sorting or allocation.
pub(crate) fn batch_is_conflict_free(
    descriptors: &[TxnDescriptor],
    scratch: &mut ConflictScratch,
) -> bool {
    let touched: usize = descriptors.iter().map(|d| d.rw_set.len()).sum();
    scratch.reset(touched);
    for (txn, descriptor) in descriptors.iter().enumerate() {
        for (state, _) in descriptor.rw_set.iter() {
            if !scratch.insert(*state, txn as u32) {
                return false;
            }
        }
    }
    !descriptors.is_empty()
}

/// Build the state transaction for one event (pre-process + state access).
fn build_transaction<A: Application>(
    app: &A,
    ts: u64,
    payload: &A::Payload,
) -> (StateTransaction, tstream_txn::BlotterHandle) {
    let mut builder = TxnBuilder::new(ts);
    if app.pre_process(payload) {
        app.state_access(payload, &mut builder);
    }
    builder.build()
}

/// Build the state transaction for one event and stamp each operation with
/// the record slots the router resolved at ingestion time (carried by the
/// batch's descriptors).  Timestamps are dense within a batch, so the
/// descriptor of an event is found by offset in O(1); a binary search over
/// the ts-sorted descriptors covers any non-dense tail without assuming
/// density for correctness.
fn resolved_transaction<A: Application>(
    app: &A,
    batch: &EngineBatch<A::Payload>,
    event: &Event<A::Payload>,
) -> (StateTransaction, tstream_txn::BlotterHandle) {
    let (mut txn, blotter) = build_transaction(app, event.ts, &event.payload);
    let descriptors = &batch.descriptors;
    let first_ts = batch.punctuation.ts.wrapping_sub(descriptors.len() as u64);
    let idx = event.ts.wrapping_sub(first_ts) as usize;
    let descriptor = match descriptors.get(idx) {
        Some(d) if d.ts == event.ts => Some(d),
        _ => descriptors
            .binary_search_by_key(&event.ts, |d| d.ts)
            .ok()
            .map(|i| &descriptors[i]),
    };
    if let Some(descriptor) = descriptor {
        if !descriptor.slots.is_empty() {
            txn.resolve_slots(|state| descriptor.slot_for(state));
        }
    }
    (txn, blotter)
}
