//! Dynamic restructuring execution: parallel processing of operation chains.
//!
//! Once every executor has entered state-access mode, the batch of postponed
//! transactions — already decomposed into per-state operation chains — is
//! processed collaboratively (Section IV-C.2):
//!
//! * chains with no data dependencies are simply walked from the smallest
//!   timestamp, in parallel, with **no** lock acquisition of any kind;
//! * chains with dependencies are handled either with the paper's iterative
//!   round-based process ([`DependencyResolution::Rounds`]) or with a
//!   fine-grained scheme in which an operation waits only until the
//!   depended-upon chain has advanced past every write with a smaller
//!   timestamp ([`DependencyResolution::FineGrained`]);
//! * states that other chains depend on keep *temporary versions* during the
//!   batch so dependent reads observe timestamp-consistent values even when
//!   their own chain runs ahead; the newest version is folded back into the
//!   committed value when the batch ends;
//! * an operation whose consistency check fails is skipped and its
//!   transaction marked aborted ("rejected"), exactly as described in
//!   "Handling Transaction Abort";
//! * if the aborting transaction had *multiple* operations, its already
//!   applied writes may live in other chains (possibly already processed by
//!   other executors).  This is the expensive case the paper calls out in
//!   Section IV-F: the batch is then **replayed serially** from its pre-batch
//!   state — every applied write is undone from the [`BatchAbortLog`] and the
//!   leader re-executes the whole batch in timestamp order, which restores
//!   exact serial-equivalent semantics at the cost the paper acknowledges.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use tstream_state::{StateError, StateStore, TableId, Timestamp, Value};
use tstream_stream::metrics::{Breakdown, Component};
use tstream_stream::operator::StateRef;
use tstream_txn::exec::{execute_operation, undo_all, ValueMode};
use tstream_txn::{ExecEnv, Operation, INVALID_SLOT};

use crate::chains::{ChainPoolSet, OperationChain, ProcessingAssignment};
use crate::config::DependencyResolution;

/// Undo information for one write applied during chain processing.
#[derive(Debug, Clone)]
pub struct UndoRecord {
    /// State that was written.
    pub state: StateRef,
    /// Record slot of the state ([`INVALID_SLOT`] when the write went
    /// through the keyed index), so rollback needs no further lookup.
    pub slot: u32,
    /// Timestamp of the writing transaction.
    pub ts: Timestamp,
    /// Committed value of the state immediately before the write.
    pub previous: Value,
}

/// Per-batch abort bookkeeping shared by all executors.
///
/// Executors append the undo records of the writes they applied once they
/// finish their share of the batch; if any multi-operation transaction
/// aborted, the batch is replayed serially from the restored pre-batch state
/// (see [`replay_batch_serially`]).
#[derive(Debug, Default)]
pub struct BatchAbortLog {
    undo: Mutex<Vec<UndoRecord>>,
    replay_needed: AtomicBool,
    /// Scratch table of the serial replay's restore pass, recycled across
    /// batches (replays are leader-only at a quiescent point, so the lock is
    /// never contended).
    replay_arena: Mutex<ReplayArena>,
}

impl BatchAbortLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one executor's undo records.
    pub fn append(&self, mut records: Vec<UndoRecord>) {
        if records.is_empty() {
            return;
        }
        self.undo.lock().append(&mut records);
    }

    /// Flag that a multi-operation transaction aborted during the batch, so
    /// the batch must be replayed serially.
    pub fn request_replay(&self) {
        self.replay_needed.store(true, Ordering::Release);
    }

    /// Whether a serial replay of the current batch is required.
    pub fn replay_needed(&self) -> bool {
        self.replay_needed.load(Ordering::Acquire)
    }

    /// Number of undo records accumulated for the current batch.
    pub fn undo_len(&self) -> usize {
        self.undo.lock().len()
    }

    /// Take all undo records, leaving the log empty.
    pub fn take_undo(&self) -> Vec<UndoRecord> {
        std::mem::take(&mut self.undo.lock())
    }

    /// Reset for the next batch.
    pub fn clear_batch(&self) {
        self.undo.lock().clear();
        self.replay_needed.store(false, Ordering::Release);
    }
}

/// One state's oldest undo record, as tracked by the [`ReplayArena`].
#[derive(Debug)]
struct ArenaEntry {
    state: StateRef,
    slot: u32,
    ts: Timestamp,
    previous: Value,
}

/// Open-addressing scratch table of the serial replay's restore pass,
/// recycled across batches (the [`crate::chains::ChainPool`] pattern): maps
/// each written state to the *oldest* undo record the batch produced for it,
/// i.e. the committed value the state had before the batch touched it.
///
/// The index stores `(state hash, entry index + 1)` pairs and probes
/// linearly; hash collisions are disambiguated against the actual state in
/// the dense entry list, so restores are always exact.  In steady state a
/// replay allocates nothing here.
#[derive(Debug, Default)]
struct ReplayArena {
    index: Vec<(u64, u32)>,
    entries: Vec<ArenaEntry>,
}

/// fx-style mix of a state reference into one 64-bit hash (non-zero, so `0`
/// can mark an empty index slot).
fn state_hash(state: StateRef) -> u64 {
    let mut h = state.key ^ ((state.table as u64) << 32);
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h.max(1)
}

impl ReplayArena {
    /// Size the index for `records` undo records and forget previous
    /// contents; existing capacity is reused.
    fn reset(&mut self, records: usize) {
        let wanted = (records * 2).next_power_of_two().max(64);
        if self.index.len() < wanted {
            self.index = vec![(0, 0); wanted];
        } else {
            self.index.fill((0, 0));
        }
        self.entries.clear();
    }

    /// Fold one undo record in, keeping the oldest (smallest-timestamp)
    /// record per state.
    fn note(&mut self, record: UndoRecord) {
        let h = state_hash(record.state);
        let mask = self.index.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let (slot_hash, idx) = self.index[i];
            if slot_hash == 0 {
                self.index[i] = (h, self.entries.len() as u32 + 1);
                self.entries.push(ArenaEntry {
                    state: record.state,
                    slot: record.slot,
                    ts: record.ts,
                    previous: record.previous,
                });
                return;
            }
            if slot_hash == h {
                let entry = &mut self.entries[(idx - 1) as usize];
                if entry.state == record.state {
                    if record.ts < entry.ts {
                        entry.ts = record.ts;
                        entry.slot = record.slot;
                        entry.previous = record.previous;
                    }
                    return;
                }
            }
            i = (i + 1) & mask;
        }
    }
}

/// Statistics returned by one executor's share of chain processing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Chains processed by this executor.
    pub chains: usize,
    /// Operations applied.
    pub ops: usize,
    /// Operations skipped because their transaction aborted.
    pub skipped: usize,
    /// Rounds needed (round-based resolution only).
    pub rounds: usize,
}

impl ChainStats {
    /// Merge another executor's statistics into this one.
    pub fn merge(&mut self, other: &ChainStats) {
        self.chains += other.chains;
        self.ops += other.ops;
        self.skipped += other.skipped;
        self.rounds = self.rounds.max(other.rounds);
    }
}

/// Everything an executor needs to process its share of a batch's chains.
#[derive(Clone, Copy)]
pub struct RestructureContext<'a> {
    /// The chain pools of the run.
    pub pools: &'a ChainPoolSet,
    /// The shared state store.
    pub store: &'a StateStore,
    /// This executor's environment (identity + NUMA model).
    pub env: ExecEnv,
    /// Dependency-resolution strategy.
    pub resolution: DependencyResolution,
    /// Whether chains are claimed dynamically within a sharing group.
    pub work_stealing: bool,
    /// Whether per-operation remote/local classification (and the fine
    /// per-operation timers that come with it) is worth paying for: true only
    /// when the NUMA model is enabled *and* the layout spans sockets.  When
    /// false, access time is charged at chain/batch granularity instead of
    /// two clock reads per operation.
    pub classify_remote: bool,
    /// Whether the whole run uses a single executor.  Barriers are elided and
    /// the batch is processed straight out of the pool shards: no task list,
    /// no claim locks, and no `Arc` clone for chains without dependencies.
    pub single_executor: bool,
    /// Per-batch abort bookkeeping (undo records + replay flag).
    pub abort_log: &'a BatchAbortLog,
}

/// Process the chains assigned to one executor for the current batch.
///
/// Returns the statistics and the list of *versioned* chains this executor
/// processed; their temporary versions must be folded into the committed
/// values once every executor has finished the batch
/// (see [`collapse_versioned`]).
pub fn process_assigned(
    ctx: &RestructureContext<'_>,
    assignment: ProcessingAssignment,
    breakdown: &mut Breakdown,
) -> (ChainStats, Vec<Arc<OperationChain>>) {
    let pool = &ctx.pools.pools()[assignment.pool];
    let mut stats = ChainStats::default();
    let mut versioned = Vec::new();
    let mut undo: Vec<UndoRecord> = Vec::new();

    if ctx.single_executor {
        // One executor owns every chain: skip the sorted task list entirely
        // and process straight from a plain snapshot of the pool shards.
        // The snapshot is taken first (one read lock per pool shard) so no
        // shard lock is held while operations execute — state access takes
        // record locks and touches per-event blotters, and nesting those
        // under a pool-shard guard both risks lock-order inversions and
        // poisons the lock-order tracker's acquisition graph in test builds.
        // Chains that neither depend on another chain nor are depended upon
        // (the overwhelming majority under realistic workloads) are processed
        // in place with no cursor allocation and no claim lock; the rest are
        // deferred to the cooperative scheduler, which with one executor can
        // never stall: the smallest-timestamp unprocessed operation is
        // always runnable.
        let t_all = (!ctx.classify_remote).then(Instant::now);
        let mut deferred: Vec<Arc<OperationChain>> = Vec::new();
        for chain in pool.snapshot() {
            if chain.is_depended_upon() || chain.has_dependencies() {
                deferred.push(chain);
            } else {
                process_whole_chain(ctx, &chain, &mut stats, breakdown, &mut undo, false);
            }
        }
        if !deferred.is_empty() {
            process_cooperatively(ctx, &deferred, &mut stats, breakdown, &mut undo, false);
            for chain in &deferred {
                if chain.is_depended_upon() {
                    versioned.push(chain.clone());
                }
            }
        }
        if let Some(t) = t_all {
            breakdown.charge(Component::Useful, t.elapsed());
        }
        stats.rounds = 1;
        ctx.abort_log.append(undo);
        return (stats, versioned);
    }

    // Claim the chains this executor is responsible for.
    let my_chains: Vec<Arc<OperationChain>> = if assignment.group_size <= 1 {
        pool.claim_all_remaining()
    } else if ctx.work_stealing {
        std::iter::from_fn(|| pool.claim_next()).collect()
    } else {
        pool.task_slice(assignment.member, assignment.group_size)
    };

    match ctx.resolution {
        DependencyResolution::FineGrained => {
            process_cooperatively(ctx, &my_chains, &mut stats, breakdown, &mut undo, true);
            stats.rounds = 1;
        }
        DependencyResolution::Rounds => {
            // Round 1 .. k: only process chains whose dependency chains have
            // been fully processed; remaining chains wait for the next round.
            let mut pending: Vec<Arc<OperationChain>> = Vec::new();
            let mut current: Vec<Arc<OperationChain>> = my_chains.clone();
            let mut rounds = 0usize;
            loop {
                rounds += 1;
                let mut progressed = false;
                for chain in current.drain(..) {
                    let ready = chain.dependencies().iter().all(|dep| {
                        ctx.pools
                            .find_chain(*dep)
                            .map(|c| c.is_fully_processed())
                            .unwrap_or(true)
                    });
                    if ready {
                        process_whole_chain(ctx, &chain, &mut stats, breakdown, &mut undo, true);
                        progressed = true;
                    } else {
                        pending.push(chain);
                    }
                }
                if pending.is_empty() {
                    break;
                }
                if !progressed {
                    // No chain became ready in a whole pass: either a
                    // dependency cycle between chains or a dependency owned by
                    // another executor that is itself not finished.  Fall back
                    // to the deadlock-free cooperative scheduler for the rest.
                    let rest = std::mem::take(&mut pending);
                    process_cooperatively(ctx, &rest, &mut stats, breakdown, &mut undo, true);
                    break;
                }
                std::mem::swap(&mut current, &mut pending);
            }
            stats.rounds = rounds;
        }
    }

    for chain in &my_chains {
        if chain.is_depended_upon() {
            versioned.push(chain.clone());
        }
    }
    ctx.abort_log.append(undo);
    (stats, versioned)
}

/// Cursor over one chain during cooperative processing.  Operations are
/// *borrowed* from the chain (whose `Arc` outlives the cursor): chain
/// contents are frozen between the TXN_START barrier and the end-of-batch
/// recycle, so no `Operation` (with its `Arc`-heavy function and blotter
/// handles) needs to be cloned to walk it.
struct ChainCursor<'a> {
    chain: &'a OperationChain,
    ops: Vec<&'a Operation>,
    next: usize,
}

/// Process a set of chains cooperatively: the executor keeps cycling over its
/// chains, advancing each one until it hits an operation whose dependency is
/// not yet satisfied, then moves on to the next chain.
///
/// This never blocks while runnable work is available, which makes the
/// fine-grained schedule deadlock-free even when a chain and the chain it
/// depends on are assigned to the *same* executor: the globally
/// smallest-timestamp unprocessed operation is always runnable, and its owner
/// reaches it within one pass over its cursors.
fn process_cooperatively(
    ctx: &RestructureContext<'_>,
    chains: &[Arc<OperationChain>],
    stats: &mut ChainStats,
    breakdown: &mut Breakdown,
    undo: &mut Vec<UndoRecord>,
    timed: bool,
) {
    // With per-op classification off, charge Useful at chain/burst
    // granularity instead — unless an enclosing timer already covers us
    // (`timed == false`, the single-executor path).
    let coarse = timed && !ctx.classify_remote;
    // First pass: walk each chain in place.  Only a chain that actually hits
    // an unsatisfied dependency materialises a cursor (with its op vector)
    // for the cycling loop below; most chains complete here with zero
    // allocations.
    let mut blocked: Vec<ChainCursor<'_>> = Vec::new();
    'chains: for chain in chains {
        let versioned_target = chain.is_depended_upon();
        let t = coarse.then(Instant::now);
        for (i, op) in chain.iter().enumerate() {
            if dependency_blocked(ctx, op) {
                if let Some(t) = t {
                    breakdown.charge(Component::Useful, t.elapsed());
                }
                blocked.push(ChainCursor {
                    chain,
                    ops: chain.iter().collect(),
                    next: i,
                });
                continue 'chains;
            }
            apply_chain_op(ctx, chain, op, versioned_target, stats, breakdown, undo);
        }
        if let Some(t) = t {
            breakdown.charge(Component::Useful, t.elapsed());
        }
        chain.mark_fully_processed();
        stats.chains += 1;
    }

    // Cycling loop over the blocked chains: advance each as far as its
    // dependencies allow, then move on; never block while runnable work
    // exists.
    let mut remaining: usize = blocked.len();
    let mut wait_timer: Option<Instant> = None;
    while remaining > 0 {
        let mut progressed = false;
        for cursor in &mut blocked {
            if cursor.next >= cursor.ops.len() {
                continue;
            }
            let versioned_target = cursor.chain.is_depended_upon();
            let t = coarse.then(Instant::now);
            let burst_start = cursor.next;
            while cursor.next < cursor.ops.len() {
                let op = cursor.ops[cursor.next];
                // Non-blocking dependency check: every write with a smaller
                // timestamp in the depended-upon chain must have been applied.
                if dependency_blocked(ctx, op) {
                    break;
                }
                apply_chain_op(
                    ctx,
                    cursor.chain,
                    op,
                    versioned_target,
                    stats,
                    breakdown,
                    undo,
                );
                cursor.next += 1;
            }
            if cursor.next > burst_start {
                progressed = true;
            }
            if let Some(t) = t {
                breakdown.charge(Component::Useful, t.elapsed());
            }
            if cursor.next >= cursor.ops.len() {
                cursor.chain.mark_fully_processed();
                stats.chains += 1;
                remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            // Every remaining operation waits on a chain owned by another
            // executor; account the stall as Sync and yield until it advances.
            wait_timer.get_or_insert_with(Instant::now);
            std::thread::yield_now();
        } else if let Some(timer) = wait_timer.take() {
            breakdown.charge(Component::Sync, timer.elapsed());
        }
    }
    if let Some(timer) = wait_timer.take() {
        breakdown.charge(Component::Sync, timer.elapsed());
    }
}

/// Whether `op` must wait for a write in the chain it depends on: every write
/// with a smaller timestamp in the depended-upon chain must have been applied
/// before `op` may read it.
#[inline]
fn dependency_blocked(ctx: &RestructureContext<'_>, op: &Operation) -> bool {
    let Some(dep) = op.dependency else {
        return false;
    };
    let Some(dep_chain) = ctx.pools.find_chain(dep) else {
        return false;
    };
    match dep_chain.last_write_before(op.ts) {
        Some(threshold) => dep_chain.processed_upto() <= threshold,
        None => false,
    }
}

/// Apply (or skip) one operation of a chain, updating statistics and — for
/// depended-upon chains only, the only ones whose watermark is ever read —
/// the processed watermark.
#[inline]
fn apply_chain_op(
    ctx: &RestructureContext<'_>,
    chain: &OperationChain,
    op: &Operation,
    versioned_target: bool,
    stats: &mut ChainStats,
    breakdown: &mut Breakdown,
    undo: &mut Vec<UndoRecord>,
) {
    if op.blotter.is_aborted() {
        stats.skipped += 1;
    } else {
        match execute_chain_op(ctx, op, versioned_target, breakdown, undo) {
            Ok(()) => stats.ops += 1,
            Err(_) => stats.skipped += 1,
        }
    }
    if versioned_target {
        chain.advance_processed(op.ts + 1);
    }
}

/// Walk one operation chain from the smallest timestamp, applying every
/// operation; used by the round-based scheduler once the chain's dependencies
/// are known to be fully processed.
fn process_whole_chain(
    ctx: &RestructureContext<'_>,
    chain: &OperationChain,
    stats: &mut ChainStats,
    breakdown: &mut Breakdown,
    undo: &mut Vec<UndoRecord>,
    timed: bool,
) {
    let versioned_target = chain.is_depended_upon();
    let t = (timed && !ctx.classify_remote).then(Instant::now);
    for op in chain.iter() {
        apply_chain_op(ctx, chain, op, versioned_target, stats, breakdown, undo);
    }
    if let Some(t) = t {
        breakdown.charge(Component::Useful, t.elapsed());
    }
    chain.mark_fully_processed();
    stats.chains += 1;
}

/// Execute a single operation of a chain.
///
/// Unlike the eager schemes this never takes a lock: the chain structure
/// already guarantees that the operations of one state are applied by one
/// thread in timestamp order.
fn execute_chain_op(
    ctx: &RestructureContext<'_>,
    op: &tstream_txn::Operation,
    versioned_target: bool,
    breakdown: &mut Breakdown,
    undo: &mut Vec<UndoRecord>,
) -> Result<(), StateError> {
    // Slot-resolved operations go straight to their record slot (routing
    // already paid the index lookup, off the critical path); unresolved ones
    // pay the keyed lookup here, charged to Others.
    let classify = ctx.classify_remote;
    let resolved =
        op.slot != INVALID_SLOT && (op.dependency.is_none() || op.dep_slot != INVALID_SLOT);
    let (record, dep_record) = if resolved {
        (
            ctx.store.record_at(TableId(op.target.table), op.slot),
            op.dependency
                .map(|dep| ctx.store.record_at(TableId(dep.table), op.dep_slot)),
        )
    } else {
        let t_index = classify.then(Instant::now);
        let record = ctx.store.record(TableId(op.target.table), op.target.key)?;
        let dep_record = match op.dependency {
            Some(dep) => Some(ctx.store.record(TableId(dep.table), dep.key)?),
            None => None,
        };
        if let Some(t) = t_index {
            breakdown.charge(Component::Others, t.elapsed());
        }
        (record, dep_record)
    };

    // Remote classification (and the fine per-op timers that go with it) is
    // only meaningful when the layout spans sockets; on a single socket the
    // caller charges Useful at chain granularity instead.
    let remote = classify
        && (ctx.env.is_remote(op.target.key)
            || op.dependency.is_some_and(|d| ctx.env.is_remote(d.key)));
    let t_access = classify.then(Instant::now);
    if remote {
        ctx.env.remote_penalty();
    }

    // A dependency state is, by construction, depended upon, so its chain is
    // processed with temporary versions; read the value visible at our
    // timestamp (falling back to the committed value when the dependency was
    // not written in this batch at all).
    let dep_value = dep_record.map(|r| r.read_visible(op.ts));

    let produced = if versioned_target {
        let current = record.read_visible(op.ts);
        op.evaluate(&current, dep_value.as_ref())
    } else {
        // No temporary versions on this state: evaluate against the committed
        // value in place instead of cloning it out of the record.
        record.with_committed(|current| op.evaluate(current, dep_value.as_ref()))
    };
    let outcome = match produced {
        Ok(Some(new_value)) => {
            // Record the pre-write committed value so the batch can be rolled
            // back if a multi-write transaction later aborts (Section IV-F).
            let previous = if versioned_target {
                let previous = record.read_committed();
                record.install_version(op.ts, new_value);
                previous
            } else {
                record.write_committed(new_value)
            };
            undo.push(UndoRecord {
                state: op.target,
                slot: op.slot,
                ts: op.ts,
                previous,
            });
            Ok(())
        }
        Ok(None) => Ok(()),
        Err(e) => {
            // The offending update is skipped and the transaction marked
            // rejected; sibling operations of the same transaction will be
            // skipped when their chains reach them.  If the transaction has
            // other operations, some of its writes may already have been
            // applied in other chains — the batch must then be replayed
            // serially to restore serial-equivalent semantics.
            op.blotter.mark_aborted(e.to_string());
            if op.blotter.slots() > 1 {
                ctx.abort_log.request_replay();
            }
            Err(e)
        }
    };
    if let Some(t) = t_access {
        let component = if remote {
            Component::Rma
        } else {
            Component::Useful
        };
        breakdown.charge(component, t.elapsed());
    }
    outcome
}

/// Fold the temporary versions of the given chains' states into their
/// committed values (end-of-batch garbage collection, Section IV-C.2).
///
/// Must only be called once every executor has finished processing the batch.
pub fn collapse_versioned(store: &StateStore, chains: &[Arc<OperationChain>]) {
    for chain in chains {
        let state = chain.state();
        // Every operation of a chain targets the chain's state, so the first
        // one carries the state's resolved slot (if routing resolved it).
        let slot = chain.iter().next().map_or(INVALID_SLOT, |op| op.slot);
        let record = if slot != INVALID_SLOT {
            Some(store.record_at(TableId(state.table), slot))
        } else {
            store.record(TableId(state.table), state.key).ok()
        };
        if let Some(record) = record {
            record.collapse_versions();
        }
    }
}

/// Statistics of one serial batch replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// States restored to their pre-batch values.
    pub restored_states: usize,
    /// Transactions re-executed.
    pub transactions: usize,
    /// Transactions that aborted during the replay (the authoritative abort
    /// decisions of the batch).
    pub aborted: usize,
}

/// Serially replay the current batch after a multi-write abort.
///
/// Dynamic restructuring applies the operations of one transaction in
/// different chains, possibly on different executors; when such a transaction
/// aborts, writes it already applied elsewhere — and every later operation
/// that read them — do not match the serial schedule any more.  The paper
/// accepts that "the abortion of a multi-write transaction may roll back
/// multiple operation chains" and flags it as TStream's expensive case
/// (Section IV-F).  This routine restores exact serial semantics:
///
/// 1. every write applied during the first pass is undone (oldest first per
///    state, using the [`BatchAbortLog`]'s undo records), restoring the
///    pre-batch committed values;
/// 2. the result slots and abort flags of every transaction in the batch are
///    cleared;
/// 3. the whole batch is re-executed by one thread in timestamp order with
///    per-transaction rollback, which is the definition of the correct state
///    transaction schedule.
///
/// Must be called from a single thread at a quiescent point (after the
/// end-of-processing barrier, before post-processing starts).
pub fn replay_batch_serially(
    store: &StateStore,
    pools: &ChainPoolSet,
    abort_log: &BatchAbortLog,
    env: &ExecEnv,
    breakdown: &mut Breakdown,
) -> ReplayStats {
    let mut stats = ReplayStats::default();

    // ---- 1. Restore the pre-batch committed values: for every written state
    // the undo record with the smallest timestamp holds the value it had
    // before the batch touched it.  The fold runs over a slot-keyed
    // open-addressing arena recycled across batches, and the restore itself
    // goes through the resolved record slots — no ordered map, no per-state
    // index lookup.
    let mut arena = abort_log.replay_arena.lock();
    let undo = abort_log.take_undo();
    arena.reset(undo.len());
    for record in undo {
        arena.note(record);
    }
    for entry in arena.entries.drain(..) {
        let record = if entry.slot != INVALID_SLOT {
            Some(store.record_at(TableId(entry.state.table), entry.slot))
        } else {
            store
                .record(TableId(entry.state.table), entry.state.key)
                .ok()
        };
        if let Some(record) = record {
            record.discard_versions();
            record.write_committed(entry.previous);
            stats.restored_states += 1;
        }
    }
    drop(arena);

    // ---- 2. Gather the batch's operations back out of the chains, as
    // *references*: the chain snapshots keep the `Arc`s alive for the whole
    // replay, so not a single `Operation` (or its blotter handle) is cloned.
    // One unstable sort by (ts, op_index) recovers both the serial
    // transaction order and the issue order within each transaction.
    let snapshots: Vec<Arc<OperationChain>> = pools
        .pools()
        .iter()
        .flat_map(|pool| pool.snapshot())
        .collect();
    let mut ops: Vec<&Operation> = snapshots.iter().flat_map(|chain| chain.iter()).collect();
    ops.sort_unstable_by_key(|op| (op.ts, op.op_index));

    // ---- 3. Re-execute serially in timestamp order with per-transaction
    // rollback (the shared eager body, inlined over the borrowed
    // operations).  The per-operation work is charged to the usual breakdown
    // components by `execute_operation` itself.
    let mut start = 0;
    while start < ops.len() {
        let ts = ops[start].ts;
        let mut end = start;
        while end < ops.len() && ops[end].ts == ts {
            end += 1;
        }
        let txn_ops = &ops[start..end];
        start = end;
        let blotter = &txn_ops[0].blotter;
        blotter.reset();
        stats.transactions += 1;
        let mut undo = Vec::with_capacity(txn_ops.len());
        for op in txn_ops {
            if let Err(e) =
                execute_operation(op, store, env, ValueMode::Committed, breakdown, &mut undo)
            {
                undo_all(store, &mut undo);
                blotter.mark_aborted(e.to_string());
                stats.aborted += 1;
                break;
            }
        }
    }
    stats
}

/// Upper bound on the memory needed for temporary multi-versioning during one
/// batch, following the paper's formula `N * m * s` (Section IV-C.2): `N`
/// transactions per punctuation interval, each touching up to `m` states of
/// size `s` bytes.
pub fn multiversion_memory_bound(
    punctuation_interval: usize,
    max_states_per_txn: usize,
    state_size_bytes: usize,
) -> usize {
    punctuation_interval * max_states_per_txn * state_size_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::ChainPoolSet;
    use crate::config::ChainPlacement;
    use std::sync::Arc;
    use tstream_state::{StateStore, TableBuilder, Value};
    use tstream_stream::executor::ExecutorLayout;
    use tstream_stream::operator::StateRef;
    use tstream_txn::TxnBuilder;

    fn store(keys: u64) -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    fn ctx<'a>(
        pools: &'a ChainPoolSet,
        store: &'a StateStore,
        abort_log: &'a BatchAbortLog,
        resolution: DependencyResolution,
    ) -> RestructureContext<'a> {
        RestructureContext {
            pools,
            store,
            env: ExecEnv::single(),
            resolution,
            work_stealing: false,
            classify_remote: true,
            single_executor: false,
            abort_log,
        }
    }

    /// Decompose a transaction into the pools (what compute mode does).
    fn decompose(pools: &ChainPoolSet, txn: &tstream_txn::StateTransaction) {
        for op in &txn.ops {
            let chain = pools.chain_for(op.target);
            if let Some(dep) = op.dependency {
                chain.add_dependency(dep);
                pools.chain_for(dep).mark_depended_upon();
            }
            chain.insert(op.clone());
        }
    }

    #[test]
    fn independent_chains_apply_all_operations() {
        let store = store(8);
        let layout = ExecutorLayout::new(1, 10);
        let pools = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 1);

        for ts in 0..64u64 {
            let mut b = TxnBuilder::new(ts);
            b.read_modify(0, ts % 8, None, |ctx| {
                Ok(Value::Long(ctx.current.as_long()? + 1))
            });
            let (txn, _) = b.build();
            decompose(&pools, &txn);
        }
        for pool in pools.pools() {
            pool.prepare_tasks();
        }
        let abort_log = BatchAbortLog::new();
        let context = ctx(
            &pools,
            &store,
            &abort_log,
            DependencyResolution::FineGrained,
        );
        let mut breakdown = Breakdown::new();
        let (stats, versioned) = process_assigned(
            &context,
            pools.assignment(tstream_stream::ExecutorId(0)),
            &mut breakdown,
        );
        assert_eq!(stats.ops, 64);
        assert!(!abort_log.replay_needed());
        assert_eq!(
            abort_log.undo_len(),
            64,
            "one undo record per applied write"
        );
        assert_eq!(stats.chains, 8);
        assert!(versioned.is_empty());
        for k in 0..8u64 {
            assert_eq!(
                store.record(TableId(0), k).unwrap().read_committed(),
                Value::Long(8)
            );
        }
    }

    #[test]
    fn dependent_chains_observe_timestamp_consistent_values() {
        // Transfer-style dependency: txn at ts writes key 1 += value of key 0
        // (as of ts); interleaved txns increment key 0.  The final value of
        // key 1 is the sum of key 0's values at each transfer timestamp,
        // which is only correct if dependent reads see the right version.
        for resolution in [
            DependencyResolution::FineGrained,
            DependencyResolution::Rounds,
        ] {
            let store = store(2);
            let layout = ExecutorLayout::new(2, 10);
            let pools = ChainPoolSet::new(ChainPlacement::SharedEverything, layout, 1);

            // ts 0,2,4,6: key0 += 10.  ts 1,3,5,7: key1 += key0 (visible).
            for ts in 0..8u64 {
                let mut b = TxnBuilder::new(ts);
                if ts % 2 == 0 {
                    b.read_modify(0, 0, None, |ctx| {
                        Ok(Value::Long(ctx.current.as_long()? + 10))
                    });
                } else {
                    b.write_with(0, 1, Some(StateRef::new(0, 0)), |ctx| {
                        Ok(Value::Long(
                            ctx.current.as_long()? + ctx.dependency.unwrap().as_long()?,
                        ))
                    });
                }
                let (txn, _) = b.build();
                decompose(&pools, &txn);
            }
            for pool in pools.pools() {
                pool.prepare_tasks();
            }

            // Two executors process the (single, shared) pool concurrently
            // with work stealing, so the two chains can be walked by
            // different threads.
            let abort_log = BatchAbortLog::new();
            let stats: Vec<(ChainStats, Vec<Arc<OperationChain>>)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|e| {
                        let pools = &pools;
                        let abort_log = &abort_log;
                        let store = store.clone();
                        s.spawn(move || {
                            let context = RestructureContext {
                                pools,
                                store: &store,
                                env: ExecEnv::single(),
                                resolution,
                                work_stealing: true,
                                classify_remote: true,
                                single_executor: false,
                                abort_log,
                            };
                            let mut breakdown = Breakdown::new();
                            process_assigned(
                                &context,
                                pools.assignment(tstream_stream::ExecutorId(e)),
                                &mut breakdown,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let versioned: Vec<Arc<OperationChain>> =
                stats.into_iter().flat_map(|(_, v)| v).collect();
            collapse_versioned(&store, &versioned);

            // key0 goes 10,20,30,40 at ts 0,2,4,6; transfers at ts 1,3,5,7 add
            // 10+20+30+40 = 100 to key1.
            assert_eq!(
                store.record(TableId(0), 0).unwrap().read_committed(),
                Value::Long(40),
                "{resolution:?}"
            );
            assert_eq!(
                store.record(TableId(0), 1).unwrap().read_committed(),
                Value::Long(100),
                "{resolution:?}"
            );
        }
    }

    #[test]
    fn aborted_transaction_operations_are_skipped() {
        let store = store(4);
        let layout = ExecutorLayout::new(1, 10);
        let pools = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 1);

        // A two-write transaction whose first (by chain order) write fails:
        // both writes must be skipped and the event marked rejected.
        let mut b = TxnBuilder::new(0);
        b.read_modify(0, 0, None, |_| {
            Err(StateError::ConsistencyViolation("bad".into()))
        });
        b.read_modify(0, 1, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
        let (txn, blotter) = b.build();
        decompose(&pools, &txn);
        for pool in pools.pools() {
            pool.prepare_tasks();
        }
        let abort_log = BatchAbortLog::new();
        let context = ctx(
            &pools,
            &store,
            &abort_log,
            DependencyResolution::FineGrained,
        );
        let mut breakdown = Breakdown::new();
        let (stats, _) = process_assigned(
            &context,
            pools.assignment(tstream_stream::ExecutorId(0)),
            &mut breakdown,
        );
        assert!(blotter.is_aborted());
        assert!(
            abort_log.replay_needed(),
            "an aborted multi-operation transaction must request a serial replay"
        );
        assert!(stats.skipped >= 1);
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(0)
        );
        // NOTE: whether the second write is skipped depends on chain
        // processing order; with a single executor the chains are processed
        // in state order, so key 1's chain runs after key 0's chain has
        // already marked the transaction aborted.
        assert_eq!(
            store.record(TableId(0), 1).unwrap().read_committed(),
            Value::Long(0)
        );
    }

    #[test]
    fn serial_replay_restores_serial_semantics_after_a_multi_write_abort() {
        // Two transactions on two keys:
        //   ts 0: key0 += 5, key1 += 5    (commits)
        //   ts 1: key0 += 1, key1 -> fails (must abort as a whole)
        //   ts 2: key0 += 3, key1 += 3    (commits, must see ts 0 but not ts 1)
        // Under chain processing alone, ts 1's write to key0 is applied before
        // its failure on key1 is discovered; the replay must erase it.
        let store = store(2);
        let layout = ExecutorLayout::new(1, 10);
        let pools = ChainPoolSet::new(ChainPlacement::SharedNothing, layout, 1);

        let add = |b: &mut TxnBuilder, key: u64, delta: i64| {
            b.read_modify(0, key, None, move |ctx| {
                Ok(Value::Long(ctx.current.as_long()? + delta))
            });
        };
        let mut blotters = Vec::new();
        for ts in 0..3u64 {
            let mut b = TxnBuilder::new(ts);
            if ts == 1 {
                add(&mut b, 0, 1);
                b.read_modify(0, 1, None, |_| {
                    Err(StateError::ConsistencyViolation("poisoned".into()))
                });
            } else {
                let delta = if ts == 0 { 5 } else { 3 };
                add(&mut b, 0, delta);
                add(&mut b, 1, delta);
            }
            let (txn, blotter) = b.build();
            decompose(&pools, &txn);
            blotters.push(blotter);
        }
        for pool in pools.pools() {
            pool.prepare_tasks();
        }

        let abort_log = BatchAbortLog::new();
        let context = ctx(
            &pools,
            &store,
            &abort_log,
            DependencyResolution::FineGrained,
        );
        let mut breakdown = Breakdown::new();
        process_assigned(
            &context,
            pools.assignment(tstream_stream::ExecutorId(0)),
            &mut breakdown,
        );
        assert!(abort_log.replay_needed());

        let env = ExecEnv::single();
        let replay = replay_batch_serially(&store, &pools, &abort_log, &env, &mut breakdown);
        assert_eq!(replay.transactions, 3);
        assert_eq!(replay.aborted, 1);
        assert!(replay.restored_states >= 1);

        // Serial semantics: key0 = 5 + 3 = 8 (ts 1 contributes nothing),
        // key1 = 5 + 3 = 8.
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(8)
        );
        assert_eq!(
            store.record(TableId(0), 1).unwrap().read_committed(),
            Value::Long(8)
        );
        assert!(blotters[1].is_aborted());
        assert!(!blotters[0].is_aborted());
        assert!(!blotters[2].is_aborted());
        // The log is drained by the replay and can be reused for the next
        // batch after a clear.
        assert_eq!(abort_log.undo_len(), 0);
        abort_log.clear_batch();
        assert!(!abort_log.replay_needed());
    }

    #[test]
    fn memory_bound_matches_paper_example() {
        // Section IV-C.2: interval 500, 4 states of 100 bytes => 200 KB.
        assert_eq!(multiversion_memory_bound(500, 4, 100), 200_000);
    }

    #[test]
    fn chain_stats_merge() {
        let mut a = ChainStats {
            chains: 1,
            ops: 10,
            skipped: 0,
            rounds: 1,
        };
        let b = ChainStats {
            chains: 2,
            ops: 5,
            skipped: 1,
            rounds: 3,
        };
        a.merge(&b);
        assert_eq!(a.chains, 3);
        assert_eq!(a.ops, 15);
        assert_eq!(a.skipped, 1);
        assert_eq!(a.rounds, 3);
    }
}
