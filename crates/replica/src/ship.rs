//! The primary-side shipper: streams the durable log's artifacts to a
//! standby and holds the retention pin that keeps unacked segments on
//! disk.
//!
//! [`Shipper::attach`] hooks into the [`DurableLog`]'s
//! [`tstream_recovery::ShipSink`]: the executor leader fires
//! `segment_executed` once per epoch — after the batch executed, so the
//! segment is sealed *and* the state root is known — and
//! `checkpoint_written` after each durable checkpoint.  The shipper reads
//! the artifact bytes and enqueues them on the [`ShipTransport`];
//! acknowledgements drain opportunistically on every ship (and on demand
//! via [`Shipper::pump_acks`]) and advance the retention pin, releasing
//! segments for truncation only once the standby has durably mirrored
//! *and* executed them.
//!
//! ## The ack / retention contract
//!
//! * the standby acks epoch `e` only after durable receipt and execution;
//! * the primary never truncates a sealed segment above the pin floor,
//!   and the floor only advances to `e + 1` on a verified ack of `e`;
//! * so a lagging (or dead) standby can always resume from the primary's
//!   directory — no shipped-but-unacked epoch is ever lost.
//!
//! Divergence: every ack carries the standby's post-apply state root.  The
//! primary compares it against its own recorded root for that epoch; a
//! mismatch increments `tstream_replica_divergence_total` and poisons the
//! shipper — [`Shipper::pump_acks`] reports the first divergent epoch by
//! name and shipping stops rather than propagate a forked history.

use std::fs;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use tstream_obs::Obs;
use tstream_recovery::{list_segments, DurableLog, RetentionPin, ShipSink};

use tstream_state::{StateError, StateResult};

use crate::transport::{ShipItem, ShipTransport};

/// Mutable shipper state, behind one mutex: the sink fires from the
/// executor leader while `pump_acks` may be called from the ingestion
/// thread.
#[derive(Debug, Default)]
struct ShipperState {
    /// Highest epoch shipped, if any.
    shipped_through: Option<u64>,
    /// Highest epoch verified-acked, if any.
    acked_through: Option<u64>,
    /// First epoch whose ack root diverged from the primary's.
    divergence: Option<u64>,
    /// First transport/filesystem error hit inside the sink (the sink
    /// cannot return errors to the engine, so it is surfaced here).
    error: Option<StateError>,
}

/// Primary-side shipping pipeline over one [`DurableLog`].
///
/// Create with [`Shipper::attach`]; drop order does not matter — the
/// retention pin is released when the shipper drops, returning truncation
/// to the normal checkpoint cadence.
pub struct Shipper {
    log: Arc<DurableLog>,
    transport: Arc<dyn ShipTransport>,
    obs: Arc<Obs>,
    /// Keeps every epoch `>=` floor on disk until the standby acks it;
    /// released (returning truncation to the checkpoint cadence) when the
    /// shipper drops.
    pin: Option<RetentionPin>,
    state: Mutex<ShipperState>,
}

impl std::fmt::Debug for Shipper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Shipper")
            .field("shipped_through", &state.shipped_through)
            .field("acked_through", &state.acked_through)
            .field("divergence", &state.divergence)
            .finish()
    }
}

impl Shipper {
    /// Attach a shipper to `log`, catching up and then streaming.
    ///
    /// Catch-up ships the durability meta file plus every sealed segment
    /// currently on disk (with no root to compare — roots start recording
    /// now), then [`DurableLog::attach_shipper`] wires the sink so every
    /// subsequently executed epoch ships with its recorded root.  The
    /// retention pin is taken *before* catch-up at floor 0, so no segment
    /// can be truncated between listing and shipping.
    ///
    /// # Errors
    ///
    /// [`StateError::InvalidDefinition`] when the log's history no longer
    /// starts at its first on-disk segment's epoch — i.e. a checkpoint
    /// already truncated segments the standby would need.  Attach the
    /// shipper before the primary's first checkpoint (or seed the standby
    /// from a copy of the primary's directory first).  Transport and
    /// filesystem errors pass through.
    pub fn attach(
        log: &Arc<DurableLog>,
        transport: Arc<dyn ShipTransport>,
        obs: Arc<Obs>,
    ) -> StateResult<Arc<Shipper>> {
        let pin = log.pin_retention(0);
        let wal_dir = log.wal_directory();
        let root_dir = wal_dir
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| wal_dir.clone());

        // A from-scratch standby replays every epoch from 0, so the
        // primary's sealed history must still reach back to 0 — i.e. no
        // checkpoint has truncated it yet (`epoch_base` is the first epoch
        // not covered by a checkpoint at open time).
        if log.epoch_base() != 0 {
            return Err(StateError::InvalidDefinition(format!(
                "cannot attach shipper: a checkpoint already covers epochs below {}; \
                 attach before the primary's first checkpoint, or seed the standby from \
                 a copy of the primary's directory",
                log.epoch_base()
            )));
        }
        let sealed: Vec<_> = list_segments(&wal_dir)?
            .into_iter()
            .filter(|info| info.sealed)
            .collect();

        let meta_path = root_dir.join(tstream_recovery::coordinator::META_FILE);
        if meta_path.exists() {
            transport.send(ShipItem::Meta {
                bytes: fs::read(&meta_path)?,
            })?;
        }

        let shipper = Arc::new(Shipper {
            log: log.clone(),
            transport,
            obs,
            pin: Some(pin),
            state: Mutex::new(ShipperState::default()),
        });
        for info in &sealed {
            shipper.ship_segment(info.epoch, &info.path, log.epoch_root(info.epoch))?;
        }
        log.attach_shipper(&(shipper.clone() as Arc<dyn ShipSink>));
        Ok(shipper)
    }

    /// Highest epoch shipped so far.
    pub fn shipped_through(&self) -> Option<u64> {
        self.state.lock().shipped_through
    }

    /// Highest epoch the standby has verified-acked so far.
    pub fn acked_through(&self) -> Option<u64> {
        self.state.lock().acked_through
    }

    /// First epoch whose standby root diverged from the primary's, if any.
    pub fn divergence(&self) -> Option<u64> {
        self.state.lock().divergence
    }

    /// Shipped-but-unacked epochs: how far behind the standby's
    /// acknowledgements are.  Also exported as the
    /// `tstream_replica_lag_epochs` gauge.
    pub fn lag_epochs(&self) -> u64 {
        let state = self.state.lock();
        Self::lag_of(&state)
    }

    fn lag_of(state: &ShipperState) -> u64 {
        let shipped = state.shipped_through.map_or(0, |e| e + 1);
        let acked = state.acked_through.map_or(0, |e| e + 1);
        shipped.saturating_sub(acked)
    }

    /// Drain pending acknowledgements, advance the retention pin, and
    /// surface any error the fire-and-forget sink stored.
    ///
    /// # Errors
    ///
    /// [`StateError::Corrupted`] naming the first divergent epoch when a
    /// standby root mismatched; otherwise the first transport/filesystem
    /// error the sink hit.
    pub fn pump_acks(&self) -> StateResult<()> {
        let mut state = self.state.lock();
        self.drain_acks(&mut state);
        if let Some(epoch) = state.divergence {
            return Err(StateError::Corrupted(format!(
                "standby state diverged from the primary at epoch {epoch}: the shipped \
                 root does not match the standby's post-apply root"
            )));
        }
        match &state.error {
            Some(error) => Err(error.clone()),
            None => Ok(()),
        }
    }

    /// Drain and verify acks under the state lock.
    fn drain_acks(&self, state: &mut ShipperState) {
        loop {
            let ack = match self.transport.recv_ack() {
                Ok(Some(ack)) => ack,
                Ok(None) => break,
                Err(error) => {
                    state.error.get_or_insert(error);
                    break;
                }
            };
            let verified = match self.log.epoch_root(ack.epoch) {
                // Catch-up segments shipped before root recording: trust
                // the standby's own verdict.
                None => ack.ok,
                Some(expected) => ack.ok && expected == ack.root,
            };
            if verified {
                let through = state.acked_through.map_or(ack.epoch, |a| a.max(ack.epoch));
                state.acked_through = Some(through);
                // Everything at or below the ack is durably applied on the
                // standby; release it for truncation.
                if let Some(pin) = &self.pin {
                    self.log.advance_pin(pin, through + 1);
                }
            } else if state.divergence.is_none() {
                state.divergence = Some(ack.epoch);
                self.obs.hub().replica_divergence();
            }
        }
        self.obs.hub().replica_lag(Self::lag_of(state));
    }

    /// Ship one sealed segment and update counters; used by both catch-up
    /// and the live sink path.
    fn ship_segment(&self, epoch: u64, path: &Path, root: Option<u64>) -> StateResult<()> {
        let bytes = fs::read(path)?;
        let len = bytes.len() as u64;
        self.transport
            .send(ShipItem::Segment { epoch, root, bytes })?;
        self.obs.hub().replica_shipped(len);
        let mut state = self.state.lock();
        state.shipped_through = Some(state.shipped_through.map_or(epoch, |s| s.max(epoch)));
        self.drain_acks(&mut state);
        Ok(())
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        // Unpin retention: with the shipper gone, nothing resumes from
        // these segments, and leaving the pin would hold the WAL on disk
        // forever.
        if let Some(pin) = self.pin.take() {
            self.log.release_pin(pin);
        }
    }
}

impl ShipSink for Shipper {
    fn segment_executed(&self, epoch: u64, path: &Path, root: Option<u64>) {
        // Already poisoned or errored: stop shipping a forked history.
        if self.state.lock().divergence.is_some() {
            return;
        }
        if let Err(error) = self.ship_segment(epoch, path, root) {
            self.state.lock().error.get_or_insert(error);
        }
    }

    fn checkpoint_written(&self, _epoch: u64, path: &Path) {
        let result = (|| -> StateResult<()> {
            let bytes = fs::read(path)?;
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .map(str::to_string)
                .ok_or_else(|| {
                    StateError::InvalidDefinition(format!(
                        "checkpoint path {} has no usable file name",
                        path.display()
                    ))
                })?;
            let len = bytes.len() as u64;
            self.transport.send(ShipItem::Checkpoint { name, bytes })?;
            self.obs.hub().replica_shipped(len);
            Ok(())
        })();
        if let Err(error) = result {
            self.state.lock().error.get_or_insert(error);
        }
    }
}
