//! # tstream-replica
//!
//! Hot-standby replication for the TStream engine: a segment-shipping
//! pipeline that streams the primary's durable artifacts — sealed WAL
//! segments, epoch-stamped checkpoints and the durability meta file — to a
//! continuously-replaying standby, plus takeover and divergence
//! detection.
//!
//! The design leans on the same invariant the durability layer already
//! exploits (paper §IV-D): the punctuation boundary is a quiescent point.
//! One sealed segment is one executed batch (epoch), so replication is
//! *physical shipping + logical replay*: the standby mirrors the exact
//! bytes into its own durability directory and re-executes them through
//! the normal session path, staying at most one epoch behind.  Because
//! both sides quiesce at every epoch, a deterministic, order-independent
//! state root ([`tstream_state::state_root`]) is comparable per epoch —
//! divergence is detected the moment it happens and names the epoch.
//!
//! ```text
//!   primary                                  standby
//!   ───────                                  ───────
//!   Session(durable) ── seal epoch e ──┐
//!   DurableLog ⟶ ShipSink (Shipper)    │ ShipItem::Segment{e, root}
//!        │ retention pin ≥ unacked     ├───── transport ─────▶ StandbyEngine
//!        ◀──────── ShipAck{e, root'} ──┘        mirror → replay → compare
//!                                               │
//!                                               └─ promote() ⇒ new primary
//! ```
//!
//! * [`ship::Shipper`] — primary side: hooks the durable log's ship sink,
//!   streams segments/checkpoints, drains acks, and holds a retention pin
//!   so no unacked segment is ever truncated;
//! * [`standby::StandbyEngine`] — standby side: mirrors, replays,
//!   acknowledges after durable receipt *and* execution, poisons itself on
//!   divergence, and promotes into a live durable session;
//! * [`transport`] — the pluggable wire: in-process
//!   [`transport::ChannelTransport`] and spool-directory
//!   [`transport::DirTransport`];
//! * point-in-time recovery over the mirrored (never-truncated) directory
//!   comes from [`tstream_core::standby::restore_to_epoch`].

#![warn(missing_docs)]

pub mod ship;
pub mod standby;
pub mod transport;

pub use ship::Shipper;
pub use standby::StandbyEngine;
pub use transport::{ChannelTransport, DirTransport, ShipAck, ShipItem, ShipTransport};
