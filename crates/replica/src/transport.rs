//! Pluggable shipping transports: how segments, checkpoints and acks move
//! between a primary and its standby.
//!
//! The replication pipeline is transport-agnostic — [`ShipTransport`] is a
//! pair of unidirectional queues (items primary → standby, acks standby →
//! primary) with durable-receipt semantics left to the implementation.
//! Two implementations ship with the crate:
//!
//! * [`ChannelTransport`] — in-process queues for same-process
//!   primary/standby pairs (tests, embedded deployments);
//! * [`DirTransport`] — a spool directory of atomically-renamed files, the
//!   lowest-tech durable transport: the two sides only need a shared
//!   filesystem (or anything that syncs a directory), and every item
//!   survives a crash of either side.
//!
//! Items and acks use a small length-prefixed binary codec (magic
//! `TSHIP1`) so `DirTransport` files are self-describing.

use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tstream_state::{StateError, StateResult};

/// Magic prefix of every encoded [`ShipItem`] / [`ShipAck`].
const MAGIC: &[u8; 6] = b"TSHIP1";

const TAG_META: u8 = 1;
const TAG_SEGMENT: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;
const TAG_ACK: u8 = 4;

/// One unit shipped from the primary to the standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipItem {
    /// The primary's durability metadata file (`meta.tmeta`): pins the
    /// punctuation interval so the standby's mirror directory is a valid
    /// durability directory for takeover.
    Meta {
        /// Raw file bytes.
        bytes: Vec<u8>,
    },
    /// One sealed WAL segment — exactly one punctuation batch (epoch).
    Segment {
        /// Durable epoch the segment covers.
        epoch: u64,
        /// The primary's state root *after* executing this epoch, when the
        /// primary recorded one (`None` for segments shipped during
        /// catch-up, before root recording was enabled).  The standby
        /// compares its own root against this for divergence detection.
        root: Option<u64>,
        /// Raw segment file bytes.
        bytes: Vec<u8>,
    },
    /// One epoch-stamped checkpoint file, mirrored so the standby's
    /// directory supports point-in-time recovery on its own.
    Checkpoint {
        /// File name inside the `checkpoints/` subdirectory.
        name: String,
        /// Raw checkpoint file bytes.
        bytes: Vec<u8>,
    },
}

/// The standby's acknowledgement of one applied segment: sent only after
/// the segment is durably mirrored *and* fully executed, so an acked epoch
/// never needs reshipping — the primary may release its retention pin
/// through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipAck {
    /// Epoch the standby applied.
    pub epoch: u64,
    /// The standby's state root after applying the epoch.
    pub root: u64,
    /// Whether the standby's root matched the primary's (always `true`
    /// when the shipped segment carried no root to compare against).
    pub ok: bool,
}

/// A bidirectional shipping channel between one primary and one standby.
///
/// `send`/`recv` carry [`ShipItem`]s primary → standby; `send_ack`/
/// `recv_ack` carry [`ShipAck`]s standby → primary.  Both receive sides
/// are non-blocking (`Ok(None)` when nothing is pending) so either side
/// can pump opportunistically.  Implementations must preserve order per
/// direction.
pub trait ShipTransport: Send + Sync {
    /// Enqueue one item for the standby.
    fn send(&self, item: ShipItem) -> StateResult<()>;
    /// Dequeue the next item, if any.
    fn recv(&self) -> StateResult<Option<ShipItem>>;
    /// Enqueue one acknowledgement for the primary.
    fn send_ack(&self, ack: ShipAck) -> StateResult<()>;
    /// Dequeue the next acknowledgement, if any.
    fn recv_ack(&self) -> StateResult<Option<ShipAck>>;
}

// --- codec ---------------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encode one item with the `TSHIP1` header.
pub fn encode_item(item: &ShipItem) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    match item {
        ShipItem::Meta { bytes } => {
            out.push(TAG_META);
            put_bytes(&mut out, bytes);
        }
        ShipItem::Segment { epoch, root, bytes } => {
            out.push(TAG_SEGMENT);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.push(u8::from(root.is_some()));
            out.extend_from_slice(&root.unwrap_or(0).to_le_bytes());
            put_bytes(&mut out, bytes);
        }
        ShipItem::Checkpoint { name, bytes } => {
            out.push(TAG_CHECKPOINT);
            put_bytes(&mut out, name.as_bytes());
            put_bytes(&mut out, bytes);
        }
    }
    out
}

/// Encode one acknowledgement with the `TSHIP1` header.
pub fn encode_ack(ack: &ShipAck) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(TAG_ACK);
    out.extend_from_slice(&ack.epoch.to_le_bytes());
    out.extend_from_slice(&ack.root.to_le_bytes());
    out.push(u8::from(ack.ok));
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> StateResult<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(StateError::Corrupted(
                "shipped item is truncated".to_string(),
            ));
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> StateResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> StateResult<u64> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn bytes(&mut self) -> StateResult<Vec<u8>> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        let len = u32::from_le_bytes(buf) as usize;
        Ok(self.take(len)?.to_vec())
    }
}

fn open_cursor(bytes: &[u8]) -> StateResult<Cursor<'_>> {
    let mut cursor = Cursor { bytes, at: 0 };
    if cursor.take(MAGIC.len())? != MAGIC {
        return Err(StateError::Corrupted(
            "shipped item has a bad magic header (not TSHIP1)".to_string(),
        ));
    }
    Ok(cursor)
}

/// Decode one item previously produced by [`encode_item`].
pub fn decode_item(bytes: &[u8]) -> StateResult<ShipItem> {
    let mut cursor = open_cursor(bytes)?;
    match cursor.u8()? {
        TAG_META => Ok(ShipItem::Meta {
            bytes: cursor.bytes()?,
        }),
        TAG_SEGMENT => {
            let epoch = cursor.u64()?;
            let has_root = cursor.u8()? != 0;
            let root = cursor.u64()?;
            Ok(ShipItem::Segment {
                epoch,
                root: has_root.then_some(root),
                bytes: cursor.bytes()?,
            })
        }
        TAG_CHECKPOINT => {
            let name = String::from_utf8(cursor.bytes()?).map_err(|_| {
                StateError::Corrupted("shipped checkpoint name is not UTF-8".to_string())
            })?;
            Ok(ShipItem::Checkpoint {
                name,
                bytes: cursor.bytes()?,
            })
        }
        tag => Err(StateError::Corrupted(format!(
            "shipped item has unknown tag {tag}"
        ))),
    }
}

/// Decode one acknowledgement previously produced by [`encode_ack`].
pub fn decode_ack(bytes: &[u8]) -> StateResult<ShipAck> {
    let mut cursor = open_cursor(bytes)?;
    match cursor.u8()? {
        TAG_ACK => Ok(ShipAck {
            epoch: cursor.u64()?,
            root: cursor.u64()?,
            ok: cursor.u8()? != 0,
        }),
        tag => Err(StateError::Corrupted(format!(
            "shipped ack has unknown tag {tag}"
        ))),
    }
}

// --- in-process transport ------------------------------------------------

/// In-process transport: two mutex-protected queues shared by both sides.
///
/// Share one `Arc<ChannelTransport>` between the primary's shipper and the
/// standby engine.  Round-trips through the binary codec anyway, so the
/// wire format stays exercised even in tests.
#[derive(Default)]
pub struct ChannelTransport {
    items: Mutex<VecDeque<Vec<u8>>>,
    acks: Mutex<VecDeque<Vec<u8>>>,
}

impl ChannelTransport {
    /// A fresh, empty channel ready to share between both sides.
    pub fn new() -> Arc<Self> {
        Arc::new(ChannelTransport::default())
    }
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("pending_items", &self.items.lock().len())
            .field("pending_acks", &self.acks.lock().len())
            .finish()
    }
}

impl ShipTransport for ChannelTransport {
    fn send(&self, item: ShipItem) -> StateResult<()> {
        self.items.lock().push_back(encode_item(&item));
        Ok(())
    }

    fn recv(&self) -> StateResult<Option<ShipItem>> {
        match self.items.lock().pop_front() {
            Some(bytes) => decode_item(&bytes).map(Some),
            None => Ok(None),
        }
    }

    fn send_ack(&self, ack: ShipAck) -> StateResult<()> {
        self.acks.lock().push_back(encode_ack(&ack));
        Ok(())
    }

    fn recv_ack(&self) -> StateResult<Option<ShipAck>> {
        match self.acks.lock().pop_front() {
            Some(bytes) => decode_ack(&bytes).map(Some),
            None => Ok(None),
        }
    }
}

// --- spool-directory transport -------------------------------------------

/// Spool-directory transport: every item/ack is one atomically-renamed
/// file, consumed lowest-sequence-first and deleted after a successful
/// decode.
///
/// `item-{seq:012}.ship` files flow primary → standby and
/// `ack-{seq:012}.ship` files flow back; the rename-into-place makes each
/// file appear complete or not at all, and deletion-after-decode makes
/// delivery at-least-once across crashes of either side (re-decoding an
/// already-applied segment is rejected by the standby's epoch cursor, not
/// by the transport).  Both sides may open the same directory
/// independently — sequence counters resume from the files present.
#[derive(Debug)]
pub struct DirTransport {
    dir: PathBuf,
    next_item: AtomicU64,
    next_ack: AtomicU64,
}

const ITEM_PREFIX: &str = "item-";
const ACK_PREFIX: &str = "ack-";
const SPOOL_SUFFIX: &str = ".ship";

fn spool_name(prefix: &str, seq: u64) -> String {
    format!("{prefix}{seq:012}{SPOOL_SUFFIX}")
}

fn parse_spool_name(name: &str, prefix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(SPOOL_SUFFIX)?;
    (digits.len() == 12 && digits.bytes().all(|b| b.is_ascii_digit()))
        .then(|| digits.parse().ok())
        .flatten()
}

impl DirTransport {
    /// Open (creating if absent) a spool directory.  Sequence counters
    /// resume after the highest file already present, so reopening after a
    /// crash never reuses a sequence number.
    pub fn open(dir: impl AsRef<Path>) -> StateResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut max_item = None::<u64>;
        let mut max_ack = None::<u64>;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(seq) = parse_spool_name(name, ITEM_PREFIX) {
                max_item = Some(max_item.map_or(seq, |m| m.max(seq)));
            } else if let Some(seq) = parse_spool_name(name, ACK_PREFIX) {
                max_ack = Some(max_ack.map_or(seq, |m| m.max(seq)));
            }
        }
        Ok(DirTransport {
            dir,
            next_item: AtomicU64::new(max_item.map_or(0, |m| m + 1)),
            next_ack: AtomicU64::new(max_ack.map_or(0, |m| m + 1)),
        })
    }

    fn write_spool(&self, name: &str, bytes: &[u8]) -> StateResult<()> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(name);
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Read, decode and delete the lowest-sequence spool file with
    /// `prefix`, if any.
    fn take_spool(&self, prefix: &str) -> StateResult<Option<Vec<u8>>> {
        let mut lowest: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(seq) = parse_spool_name(name, prefix) {
                if lowest.as_ref().is_none_or(|(low, _)| seq < *low) {
                    lowest = Some((seq, path));
                }
            }
        }
        let Some((_, path)) = lowest else {
            return Ok(None);
        };
        let bytes = fs::read(&path)?;
        fs::remove_file(&path)?;
        Ok(Some(bytes))
    }
}

impl ShipTransport for DirTransport {
    fn send(&self, item: ShipItem) -> StateResult<()> {
        let seq = self.next_item.fetch_add(1, Ordering::Relaxed);
        self.write_spool(&spool_name(ITEM_PREFIX, seq), &encode_item(&item))
    }

    fn recv(&self) -> StateResult<Option<ShipItem>> {
        match self.take_spool(ITEM_PREFIX)? {
            Some(bytes) => decode_item(&bytes).map(Some),
            None => Ok(None),
        }
    }

    fn send_ack(&self, ack: ShipAck) -> StateResult<()> {
        let seq = self.next_ack.fetch_add(1, Ordering::Relaxed);
        self.write_spool(&spool_name(ACK_PREFIX, seq), &encode_ack(&ack))
    }

    fn recv_ack(&self) -> StateResult<Option<ShipAck>> {
        match self.take_spool(ACK_PREFIX)? {
            Some(bytes) => decode_ack(&bytes).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_items() -> Vec<ShipItem> {
        vec![
            ShipItem::Meta {
                bytes: b"TMETA1xx".to_vec(),
            },
            ShipItem::Segment {
                epoch: 7,
                root: Some(0xdead_beef_cafe_f00d),
                bytes: vec![1, 2, 3, 4],
            },
            ShipItem::Segment {
                epoch: 8,
                root: None,
                bytes: vec![],
            },
            ShipItem::Checkpoint {
                name: "checkpoint-000000000003.tsnap".to_string(),
                bytes: vec![9; 64],
            },
        ]
    }

    #[test]
    fn items_and_acks_round_trip_through_the_codec() {
        for item in sample_items() {
            assert_eq!(decode_item(&encode_item(&item)).unwrap(), item);
        }
        for ack in [
            ShipAck {
                epoch: 0,
                root: 0,
                ok: true,
            },
            ShipAck {
                epoch: u64::MAX,
                root: 42,
                ok: false,
            },
        ] {
            assert_eq!(decode_ack(&encode_ack(&ack)).unwrap(), ack);
        }
    }

    #[test]
    fn decoder_rejects_bad_magic_and_truncation() {
        assert!(decode_item(b"NOTSHIP").is_err());
        let mut encoded = encode_item(&ShipItem::Segment {
            epoch: 1,
            root: Some(2),
            bytes: vec![1, 2, 3],
        });
        encoded.truncate(encoded.len() - 2);
        assert!(decode_item(&encoded).is_err());
    }

    #[test]
    fn channel_transport_preserves_order_both_ways() {
        let transport = ChannelTransport::new();
        for item in sample_items() {
            transport.send(item).unwrap();
        }
        for expected in sample_items() {
            assert_eq!(transport.recv().unwrap(), Some(expected));
        }
        assert_eq!(transport.recv().unwrap(), None);

        transport
            .send_ack(ShipAck {
                epoch: 3,
                root: 9,
                ok: true,
            })
            .unwrap();
        assert_eq!(
            transport.recv_ack().unwrap(),
            Some(ShipAck {
                epoch: 3,
                root: 9,
                ok: true,
            })
        );
        assert_eq!(transport.recv_ack().unwrap(), None);
    }

    #[test]
    fn dir_transport_spools_in_order_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "tstream-ship-spool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);

        let sender = DirTransport::open(&dir).unwrap();
        for item in sample_items() {
            sender.send(item).unwrap();
        }
        // The receiving side opens the same directory independently — and a
        // crashed-and-reopened sender must continue the sequence, not reuse
        // it.
        let receiver = DirTransport::open(&dir).unwrap();
        assert_eq!(receiver.recv().unwrap(), Some(sample_items()[0].clone()));
        let reopened_sender = DirTransport::open(&dir).unwrap();
        reopened_sender
            .send(ShipItem::Meta {
                bytes: b"late".to_vec(),
            })
            .unwrap();
        for expected in sample_items().into_iter().skip(1) {
            assert_eq!(receiver.recv().unwrap(), Some(expected));
        }
        assert_eq!(
            receiver.recv().unwrap(),
            Some(ShipItem::Meta {
                bytes: b"late".to_vec(),
            })
        );
        assert_eq!(receiver.recv().unwrap(), None);

        receiver
            .send_ack(ShipAck {
                epoch: 0,
                root: 1,
                ok: true,
            })
            .unwrap();
        assert_eq!(
            sender.recv_ack().unwrap(),
            Some(ShipAck {
                epoch: 0,
                root: 1,
                ok: true,
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
