//! The standby side: mirror shipped artifacts into a local durability
//! directory, replay each segment through the engine, detect divergence,
//! and take over on demand.
//!
//! [`StandbyEngine::follow`] opens a continuously-replaying
//! [`StandbySession`] over a mirror directory; every
//! [`StandbyEngine::pump`] call drains the transport — metadata and
//! checkpoints are mirrored byte-for-byte, segments are mirrored *then*
//! executed (one segment, one punctuation batch), and each applied epoch
//! is acknowledged with the standby's own state root.  Because the ack is
//! sent only after the segment is durably on the standby's disk and fully
//! executed, the primary may safely release its retention pin through the
//! acked epoch.
//!
//! The mirror directory is a first-class durability directory: after a
//! primary loss, [`StandbyEngine::promote`] turns the standby into a live
//! durable session writing to that same directory, and
//! [`tstream_core::standby::restore_to_epoch`] materializes any historic
//! epoch from it (the mirror never truncates, so the whole shipped range
//! stays replayable).
//!
//! Divergence: when a shipped segment carries the primary's state root,
//! the standby compares its own post-apply root.  A mismatch increments
//! `tstream_replica_divergence_total`, nacks the epoch, **poisons** the
//! engine — every later call fails naming the divergent epoch — and
//! refuses takeover: promoting a forked replica would silently rewrite
//! history.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tstream_core::standby::StandbySession;
use tstream_core::{Engine, Scheme, Session};
use tstream_obs::Obs;
use tstream_recovery::coordinator::{CHECKPOINT_SUBDIR, META_FILE, WAL_SUBDIR};
use tstream_recovery::{read_segment, sealed_segment_name, WalPayload};
use tstream_state::{StateError, StateResult, StateStore};
use tstream_txn::Application;

use crate::transport::{ShipAck, ShipItem, ShipTransport};

/// Write `bytes` to `path` atomically (write-to-temp, rename-into-place)
/// so a crash mid-mirror never leaves a half-written durability artifact.
fn write_atomic(path: &Path, bytes: &[u8]) -> StateResult<()> {
    let tmp = path.with_extension("mirror-tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// A standby node: mirrors a primary's shipped durability artifacts and
/// replays them continuously, at most one epoch behind the shipping
/// stream.
pub struct StandbyEngine<'e, A: Application> {
    transport: Arc<dyn ShipTransport>,
    dir: PathBuf,
    session: StandbySession<'e, A>,
    obs: Arc<Obs>,
    poisoned: Option<u64>,
}

impl<'e, A: Application> std::fmt::Debug for StandbyEngine<'e, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandbyEngine")
            .field("dir", &self.dir)
            .field("next_epoch", &self.session.next_epoch())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl<'e, A: Application> StandbyEngine<'e, A> {
    /// Start following a primary: shipped artifacts are mirrored into
    /// `dir` (created if absent) and replayed over `engine` × `app` ×
    /// `store` × `scheme` — which must match the primary's run exactly
    /// (same application, schema, shard count and punctuation interval;
    /// the mirrored meta file enforces the interval at takeover).
    pub fn follow(
        engine: &'e Engine,
        app: &Arc<A>,
        store: &Arc<StateStore>,
        scheme: &Scheme,
        dir: impl AsRef<Path>,
        transport: Arc<dyn ShipTransport>,
    ) -> StateResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(dir.join(WAL_SUBDIR))?;
        fs::create_dir_all(dir.join(CHECKPOINT_SUBDIR))?;
        Ok(StandbyEngine {
            transport,
            dir,
            session: StandbySession::open(engine, app, store, scheme),
            obs: engine.observability(),
            poisoned: None,
        })
    }

    /// The mirror durability directory.
    pub fn directory(&self) -> &Path {
        &self.dir
    }

    /// Epoch the next shipped segment must carry.
    pub fn next_epoch(&self) -> u64 {
        self.session.next_epoch()
    }

    /// Highest epoch applied so far, if any.
    pub fn applied_through(&self) -> Option<u64> {
        self.session.next_epoch().checked_sub(1)
    }

    /// The standby's current state root (see [`tstream_state::state_root`]).
    pub fn state_root(&self) -> u64 {
        self.session.state_root()
    }

    /// The divergent epoch, when divergence poisoned this standby.
    pub fn poisoned(&self) -> Option<u64> {
        self.poisoned
    }

    fn poison_error(epoch: u64) -> StateError {
        StateError::Corrupted(format!(
            "standby is poisoned: its state diverged from the primary at epoch {epoch}"
        ))
    }

    /// Drain every pending shipped item: mirror it, and for segments —
    /// apply and acknowledge.  Returns the number of segments applied by
    /// this call.  The standby stays ≤ 1 epoch behind by construction:
    /// each shipped epoch is fully executed before the next is received.
    ///
    /// # Errors
    ///
    /// * the poison error naming the divergent epoch, on and after a
    ///   root mismatch;
    /// * [`StateError::InvalidDefinition`] when the shipping stream skips
    ///   or repeats an epoch;
    /// * any transport, filesystem or decode error.
    pub fn pump(&mut self) -> StateResult<usize>
    where
        A::Payload: WalPayload,
    {
        if let Some(epoch) = self.poisoned {
            return Err(Self::poison_error(epoch));
        }
        let mut applied = 0;
        while let Some(item) = self.transport.recv()? {
            match item {
                ShipItem::Meta { bytes } => {
                    write_atomic(&self.dir.join(META_FILE), &bytes)?;
                }
                ShipItem::Checkpoint { name, bytes } => {
                    // The name crosses the transport: refuse anything that
                    // could escape the checkpoints directory.
                    if name.contains(['/', '\\']) || name.contains("..") {
                        return Err(StateError::Corrupted(format!(
                            "shipped checkpoint name {name:?} is not a plain file name"
                        )));
                    }
                    write_atomic(&self.dir.join(CHECKPOINT_SUBDIR).join(name), &bytes)?;
                }
                ShipItem::Segment { epoch, root, bytes } => {
                    self.apply_shipped_segment(epoch, root, &bytes)?;
                    applied += 1;
                }
            }
        }
        Ok(applied)
    }

    /// Mirror one shipped segment, execute it, verify the root and ack.
    fn apply_shipped_segment(
        &mut self,
        epoch: u64,
        primary_root: Option<u64>,
        bytes: &[u8],
    ) -> StateResult<()>
    where
        A::Payload: WalPayload,
    {
        let path = self.dir.join(WAL_SUBDIR).join(sealed_segment_name(epoch));
        write_atomic(&path, bytes)?;
        // Decode from the mirrored file, not the in-flight bytes: what we
        // execute is exactly what a later recovery of this directory will
        // replay.
        let events = read_segment::<A::Payload>(&path)?.events;
        self.session.apply_segment(epoch, events)?;
        let standby_root = self.session.state_root();
        let ok = primary_root.is_none_or(|expected| expected == standby_root);
        self.transport.send_ack(ShipAck {
            epoch,
            root: standby_root,
            ok,
        })?;
        if !ok {
            self.obs.hub().replica_divergence();
            self.poisoned = Some(epoch);
            return Err(Self::poison_error(epoch));
        }
        Ok(())
    }

    /// Take over as primary: drain any in-flight shipped items, then turn
    /// the replay session into a live durable [`Session`] writing to the
    /// mirror directory, positioned at the epoch after the last applied
    /// segment.  The returned session's reports are cumulative across the
    /// replayed history — identical to an uninterrupted primary.
    ///
    /// # Errors
    ///
    /// The poison error when the standby diverged (a forked replica must
    /// not take over), plus anything [`StandbyEngine::pump`] or
    /// [`StandbySession::promote`] can return.
    pub fn promote(mut self) -> StateResult<Session<'e, A>>
    where
        A::Payload: WalPayload,
    {
        // Promote drains in-flight items first: an epoch shipped but not
        // yet applied would otherwise be sealed on disk *behind* the new
        // primary's write position and silently shadowed.
        self.pump()?;
        self.session.promote(&self.dir)
    }
}
