//! End-to-end replication pipeline tests over an in-process transport:
//! follow, promote, and divergence detection.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use tstream_core::prelude::*;
use tstream_replica::{ChannelTransport, Shipper, StandbyEngine};
use tstream_state::codec::Reader;
use tstream_state::{state_root, StateResult};

const INTERVAL: usize = 8;
const KEYS: u64 = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tstream-replica-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One event: increment the counter at `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key(u64);

impl WalPayload for Key {
    fn encode_wal(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn decode_wal(reader: &mut Reader<'_>) -> StateResult<Self> {
        Ok(Key(reader.u64()?))
    }
}

struct Counter;

impl Application for Counter {
    type Payload = Key;
    fn name(&self) -> &'static str {
        "replica-counter"
    }
    fn read_write_set(&self, key: &Key) -> ReadWriteSet {
        ReadWriteSet::new().write(StateRef::new(0, key.0))
    }
    fn state_access(&self, key: &Key, txn: &mut TxnBuilder) {
        txn.read_modify(0, key.0, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
    }
    fn post_process(&self, _key: &Key, _blotter: &EventBlotter) -> PostAction {
        PostAction::Emit
    }
}

fn counter_store() -> Arc<StateStore> {
    let table = TableBuilder::new("counters")
        .extend((0..KEYS).map(|k| (k, Value::Long(0))))
        .build()
        .unwrap();
    StateStore::new(vec![table]).unwrap()
}

fn engine() -> Engine {
    Engine::new(
        EngineConfig::with_executors(2)
            .punctuation(INTERVAL)
            .checkpoint_every(2),
    )
}

fn input(events: usize) -> impl Iterator<Item = Key> {
    (0..events as u64).map(|i| Key(i % KEYS))
}

#[test]
fn standby_follows_the_primary_and_roots_match_every_epoch() {
    let primary_dir = temp_dir("follow-primary");
    let standby_dir = temp_dir("follow-standby");
    let transport = ChannelTransport::new();

    let primary_engine = engine();
    let primary_store = counter_store();
    let app = Arc::new(Counter);
    let mut session = primary_engine
        .session_builder(&app, &primary_store, &Scheme::TStream)
        .durable(&primary_dir)
        .open()
        .unwrap();
    let log = session.log().expect("durable session has a log").clone();
    let shipper = Shipper::attach(&log, transport.clone(), primary_engine.observability()).unwrap();

    let standby_engine_handle = engine();
    let standby_store = counter_store();
    let mut standby = StandbyEngine::follow(
        &standby_engine_handle,
        &app,
        &standby_store,
        &Scheme::TStream,
        &standby_dir,
        transport,
    )
    .unwrap();

    for (i, key) in input(5 * INTERVAL).enumerate() {
        session.push(key).unwrap();
        if i % INTERVAL == INTERVAL - 1 {
            session.flush().unwrap();
            standby.pump().unwrap();
            // The standby replays each shipped segment as it arrives: it
            // stays at most one epoch behind the primary's sealed history.
            assert_eq!(standby.next_epoch(), (i + 1) as u64 / INTERVAL as u64);
            assert_eq!(state_root(&standby_store), state_root(&primary_store));
        }
    }
    shipper.pump_acks().unwrap();
    assert_eq!(shipper.shipped_through(), Some(4));
    assert_eq!(shipper.acked_through(), Some(4));
    assert_eq!(shipper.lag_epochs(), 0);
    assert_eq!(shipper.divergence(), None);
    assert_eq!(standby.applied_through(), Some(4));
    assert_eq!(standby.poisoned(), None);

    // The replication series are live on the primary's hub.
    let text = primary_engine.metrics_text();
    assert!(text.contains("tstream_replica_shipped_bytes"), "{text}");
    assert!(text.contains("tstream_replica_lag_epochs 0"), "{text}");
    let report = session.report().unwrap();
    assert_eq!(report.committed, 5 * INTERVAL as u64);

    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&standby_dir);
}

#[test]
fn promoted_standby_continues_the_run_byte_identically() {
    const TOTAL: usize = 5 * INTERVAL;
    const BEFORE_KILL: usize = 2 * INTERVAL;

    // Baseline: the same input, uninterrupted, no replication.
    let baseline_engine = engine();
    let baseline_store = counter_store();
    let app = Arc::new(Counter);
    let mut baseline = baseline_engine
        .session_builder(&app, &baseline_store, &Scheme::TStream)
        .open()
        .unwrap();
    for key in input(TOTAL) {
        baseline.push(key).unwrap();
    }
    let baseline_report = baseline.report().unwrap();

    let primary_dir = temp_dir("promote-primary");
    let standby_dir = temp_dir("promote-standby");
    let transport = ChannelTransport::new();

    let standby_engine_handle = engine();
    let standby_store = counter_store();
    let mut standby = StandbyEngine::follow(
        &standby_engine_handle,
        &app,
        &standby_store,
        &Scheme::TStream,
        &standby_dir,
        transport.clone(),
    )
    .unwrap();

    {
        let primary_engine = engine();
        let primary_store = counter_store();
        let mut session = primary_engine
            .session_builder(&app, &primary_store, &Scheme::TStream)
            .durable(&primary_dir)
            .open()
            .unwrap();
        let log = session.log().unwrap().clone();
        let _shipper =
            Shipper::attach(&log, transport.clone(), primary_engine.observability()).unwrap();
        for key in input(BEFORE_KILL) {
            session.push(key).unwrap();
        }
        session.flush().unwrap();
        // Primary dies here: the session drops without ever seeing the
        // rest of the input.
    }

    standby.pump().unwrap();
    assert_eq!(standby.next_epoch(), (BEFORE_KILL / INTERVAL) as u64);
    let mut promoted = standby.promote().unwrap();
    for key in input(TOTAL).skip(BEFORE_KILL) {
        promoted.push(key).unwrap();
    }
    let report = promoted.report().unwrap();
    assert_eq!(state_root(&standby_store), state_root(&baseline_store));
    assert_eq!(report.events, baseline_report.events);
    assert_eq!(report.committed, baseline_report.committed);
    assert_eq!(report.rejected, baseline_report.rejected);

    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&standby_dir);
}

#[test]
fn a_flipped_standby_record_is_detected_and_names_the_epoch() {
    let primary_dir = temp_dir("diverge-primary");
    let standby_dir = temp_dir("diverge-standby");
    let transport = ChannelTransport::new();

    let primary_engine = engine();
    let primary_store = counter_store();
    let app = Arc::new(Counter);
    let mut session = primary_engine
        .session_builder(&app, &primary_store, &Scheme::TStream)
        .durable(&primary_dir)
        .open()
        .unwrap();
    let log = session.log().unwrap().clone();
    let shipper = Shipper::attach(&log, transport.clone(), primary_engine.observability()).unwrap();

    let standby_engine_handle = engine();
    let standby_store = counter_store();
    let mut standby = StandbyEngine::follow(
        &standby_engine_handle,
        &app,
        &standby_store,
        &Scheme::TStream,
        &standby_dir,
        transport,
    )
    .unwrap();

    // Epoch 0 replicates cleanly.
    for key in input(INTERVAL) {
        session.push(key).unwrap();
    }
    session.flush().unwrap();
    standby.pump().unwrap();
    assert_eq!(standby.poisoned(), None);

    // Flip one record on the standby, out of band.
    {
        let mut vandal = standby_engine_handle
            .session_builder(&app, &standby_store, &Scheme::TStream)
            .open()
            .unwrap();
        vandal.push(Key(0)).unwrap();
        let _ = vandal.report().unwrap();
    }

    // The next shipped epoch exposes the fork: the standby's post-apply
    // root no longer matches the primary's, the error names the epoch, and
    // the standby is poisoned — including against takeover.
    for key in input(INTERVAL) {
        session.push(key).unwrap();
    }
    session.flush().unwrap();
    let error = standby.pump().unwrap_err();
    assert!(error.to_string().contains("epoch 1"), "{error}");
    assert_eq!(standby.poisoned(), Some(1));
    let again = standby.pump().unwrap_err();
    assert!(again.to_string().contains("epoch 1"), "{again}");

    // The nack reaches the primary: its shipper reports the divergence and
    // the counter is exported.
    let error = shipper.pump_acks().unwrap_err();
    assert!(error.to_string().contains("epoch 1"), "{error}");
    assert_eq!(shipper.divergence(), Some(1));
    assert!(primary_engine
        .metrics_json()
        .contains("\"replica_divergence_total\":1"));

    let error = standby.promote().unwrap_err();
    assert!(error.to_string().contains("epoch 1"), "{error}");

    drop(session);
    let _ = fs::remove_dir_all(&primary_dir);
    let _ = fs::remove_dir_all(&standby_dir);
}
