//! Transaction outcomes.

/// Result of executing one state transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnOutcome {
    /// All operations applied.
    Committed,
    /// The transaction was aborted; its event is reported as "rejected" on
    /// the output stream (Section IV-C.2).
    Aborted {
        /// Why the transaction aborted (e.g. a consistency violation).
        reason: String,
    },
}

impl TxnOutcome {
    /// `true` for committed transactions.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed)
    }

    /// `true` for aborted transactions.
    pub fn is_aborted(&self) -> bool {
        !self.is_committed()
    }

    /// Helper constructing an aborted outcome.
    pub fn aborted(reason: impl Into<String>) -> Self {
        TxnOutcome::Aborted {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(TxnOutcome::Committed.is_committed());
        assert!(!TxnOutcome::Committed.is_aborted());
        let a = TxnOutcome::aborted("nope");
        assert!(a.is_aborted());
        match a {
            TxnOutcome::Aborted { reason } => assert_eq!(reason, "nope"),
            _ => unreachable!(),
        }
    }
}
