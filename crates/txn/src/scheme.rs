//! The interface the engine drives baseline schemes through, plus the
//! execution environment (executor identity and NUMA model) shared by all
//! schemes.

use std::time::Duration;

use tstream_state::StateStore;
use tstream_stream::executor::{ExecutorId, ExecutorLayout};
use tstream_stream::metrics::Breakdown;
use tstream_stream::operator::{ReadWriteSet, StateRef};

use crate::operation::INVALID_SLOT;
use crate::outcome::TxnOutcome;
use crate::transaction::StateTransaction;
use crate::Timestamp;

/// Compact description of a transaction used during batch preparation:
/// its timestamp and determined read/write set (feature **F2**).
#[derive(Debug, Clone)]
pub struct TxnDescriptor {
    /// Transaction timestamp.
    pub ts: Timestamp,
    /// Determined read/write set.
    pub rw_set: ReadWriteSet,
    /// Record slot of each `rw_set` entry (same order), resolved once on the
    /// ingestion thread while the previous batch executes.
    /// [`INVALID_SLOT`] marks entries the
    /// router could not resolve; empty when the batch was built without a
    /// store (slot resolution is an optimization, never a requirement).
    pub slots: Vec<u32>,
}

impl TxnDescriptor {
    /// A descriptor with no slots resolved.
    pub fn unresolved(ts: Timestamp, rw_set: ReadWriteSet) -> Self {
        TxnDescriptor {
            ts,
            rw_set,
            slots: Vec::new(),
        }
    }

    /// The resolved record slot of `state`, or
    /// [`INVALID_SLOT`] when the state is not
    /// in the read/write set or was not resolved.  Linear scan: transactions
    /// touch a handful of states, so this beats any hashed lookup.
    pub fn slot_for(&self, state: StateRef) -> u32 {
        for (i, (s, _)) in self.rw_set.iter().enumerate() {
            if *s == state {
                return self.slots.get(i).copied().unwrap_or(INVALID_SLOT);
            }
        }
        INVALID_SLOT
    }
}

/// Model of the multi-socket machine the paper evaluates on.
///
/// Our host is a single-image machine, so remote memory accesses are
/// *modelled*: each record key is assigned an owner socket by hashing, any
/// access from an executor on a different synthetic socket is charged to the
/// *RMA* breakdown component, and an optional busy-wait delay approximating
/// the measured local-vs-remote latency gap (327.5 ns − 142.6 ns on the
/// paper's machine) can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaModel {
    /// Whether remote accesses are classified (and possibly delayed) at all.
    pub enabled: bool,
    /// Extra latency injected per remote access, in nanoseconds.
    pub remote_delay_ns: u64,
}

impl NumaModel {
    /// NUMA modelling switched off (single-socket runs, unit tests).
    pub fn disabled() -> Self {
        NumaModel {
            enabled: false,
            remote_delay_ns: 0,
        }
    }

    /// Classification without injected delay.
    pub fn classify_only() -> Self {
        NumaModel {
            enabled: true,
            remote_delay_ns: 0,
        }
    }

    /// Classification plus the paper-calibrated remote latency penalty.
    pub fn paper_calibrated() -> Self {
        NumaModel {
            enabled: true,
            // 327.5 ns remote − 142.6 ns local ≈ 185 ns extra per access.
            remote_delay_ns: 185,
        }
    }
}

/// Execution environment of one executor thread.
#[derive(Debug, Clone, Copy)]
pub struct ExecEnv {
    /// The executor running the transaction.
    pub executor: ExecutorId,
    /// Layout of executors over synthetic sockets.
    pub layout: ExecutorLayout,
    /// NUMA model in force.
    pub numa: NumaModel,
}

impl ExecEnv {
    /// Environment for single-threaded / test execution.
    pub fn single() -> Self {
        ExecEnv {
            executor: ExecutorId(0),
            layout: ExecutorLayout::new(1, 10),
            numa: NumaModel::disabled(),
        }
    }

    /// Synthetic socket that owns a record key (keys are spread over sockets
    /// by hashing, mirroring first-touch page placement of a populated
    /// table).
    pub fn owner_socket(&self, key: u64) -> usize {
        let sockets = self.layout.sockets().max(1);
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        (h % sockets as u64) as usize
    }

    /// Whether an access to `key` from this executor is remote under the
    /// NUMA model.
    pub fn is_remote(&self, key: u64) -> bool {
        self.numa.enabled
            && self.layout.sockets() > 1
            && self.owner_socket(key) != self.layout.socket_of(self.executor)
    }

    /// Busy-wait for the modelled remote-access penalty (no-op when the model
    /// injects no delay).
    pub fn remote_penalty(&self) {
        if self.numa.remote_delay_ns == 0 {
            return;
        }
        let target = Duration::from_nanos(self.numa.remote_delay_ns);
        let start = tstream_obs::clock::now();
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

/// A concurrency-control scheme that executes each state transaction eagerly,
/// i.e. inside the processing of its triggering event (the coarse-grained
/// paradigm of the prior work, Section II-C).
///
/// Lifecycle per punctuation batch:
///
/// 1. `prepare_batch` — called once, single-threaded, with the descriptors of
///    every transaction of the batch in timestamp order.  Schemes use it to
///    assign the per-partition / per-state sequence numbers their counters
///    enforce at run time (the paper's schemes derive the same information
///    from the determined read/write sets, feature F2).
/// 2. `execute` — called concurrently from executor threads, once per
///    transaction.
/// 3. `end_batch` — called once after every transaction of the batch has
///    finished (quiescent point), e.g. for MVLK's version garbage collection.
pub trait EagerScheme: Send + Sync {
    /// Scheme name as used in the paper's figures (e.g. "LOCK").
    fn name(&self) -> &'static str;

    /// Register the transactions of the upcoming batch (timestamp order).
    fn prepare_batch(&self, batch: &[TxnDescriptor]);

    /// Execute one transaction, charging time to `breakdown`.
    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome;

    /// Quiescent end-of-batch hook.
    fn end_batch(&self, store: &StateStore);

    /// Reset all run-scoped bookkeeping (between benchmark runs).
    fn reset(&self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn numa_model_presets() {
        assert!(!NumaModel::disabled().enabled);
        assert!(NumaModel::classify_only().enabled);
        assert_eq!(NumaModel::classify_only().remote_delay_ns, 0);
        assert!(NumaModel::paper_calibrated().remote_delay_ns > 0);
    }

    #[test]
    fn single_socket_never_remote() {
        let env = ExecEnv {
            executor: ExecutorId(3),
            layout: ExecutorLayout::new(8, 10),
            numa: NumaModel::classify_only(),
        };
        // 8 executors on 10-core sockets = a single socket: nothing remote.
        for key in 0..100 {
            assert!(!env.is_remote(key));
        }
    }

    #[test]
    fn multi_socket_classification_is_consistent() {
        let layout = ExecutorLayout::new(20, 10);
        let env0 = ExecEnv {
            executor: ExecutorId(0),
            layout,
            numa: NumaModel::classify_only(),
        };
        let env1 = ExecEnv {
            executor: ExecutorId(15),
            layout,
            numa: NumaModel::classify_only(),
        };
        let mut saw_remote = false;
        for key in 0..1000u64 {
            assert_eq!(env0.owner_socket(key), env1.owner_socket(key));
            // The same key must be remote for exactly one of two executors on
            // different sockets (there are exactly two sockets here).
            assert_ne!(env0.is_remote(key), env1.is_remote(key));
            saw_remote |= env0.is_remote(key) || env1.is_remote(key);
        }
        assert!(saw_remote);
    }

    #[test]
    fn disabled_model_reports_local_even_across_sockets() {
        let env = ExecEnv {
            executor: ExecutorId(19),
            layout: ExecutorLayout::new(20, 10),
            numa: NumaModel::disabled(),
        };
        assert!(!env.is_remote(12345));
        // remote_penalty with zero delay returns immediately.
        env.remote_penalty();
    }

    #[test]
    fn remote_penalty_busy_waits_roughly_the_requested_time() {
        let env = ExecEnv {
            executor: ExecutorId(0),
            layout: ExecutorLayout::new(1, 1),
            numa: NumaModel {
                enabled: true,
                remote_delay_ns: 50_000,
            },
        };
        let start = Instant::now();
        env.remote_penalty();
        assert!(start.elapsed() >= Duration::from_nanos(50_000));
    }
}
