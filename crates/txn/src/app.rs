//! The application programming interface.
//!
//! Every benchmark application (GS, SL, OB, TP) implements [`Application`],
//! which mirrors the user-implemented APIs of the paper (Table II): the
//! three-step procedure of pre-process, state access, and post-process
//! (feature **F1**), with the read/write set derivable from the input event
//! alone (feature **F2**).

use tstream_stream::operator::ReadWriteSet;

use crate::blotter::EventBlotter;
use crate::transaction::TxnBuilder;

/// What happens to an event after post-processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostAction {
    /// A result is emitted to the sink.
    Emit,
    /// The event produces no output (e.g. it only updated state).
    Silent,
}

/// A concurrent stateful stream application expressed as a (fused)
/// three-step operator.
///
/// The engine calls the methods in this order for every event:
///
/// 1. [`Application::pre_process`] — filter / parse; returning `false` drops
///    the event without issuing a transaction;
/// 2. [`Application::read_write_set`] — the determined read/write set
///    (feature F2), used by schemes to pre-register ordering information;
/// 3. [`Application::state_access`] — issue the event's single state
///    transaction through the [`TxnBuilder`] (Table II's `STATE_ACCESS`);
/// 4. [`Application::post_process`] — consume the access results recorded in
///    the [`EventBlotter`] and produce output.
pub trait Application: Send + Sync + 'static {
    /// Parsed event payload.
    type Payload: Send + Sync + Clone + 'static;

    /// Application name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Pre-process / filter an event; `false` drops it.
    fn pre_process(&self, _payload: &Self::Payload) -> bool {
        true
    }

    /// The determined read/write set of the transaction this event triggers.
    fn read_write_set(&self, payload: &Self::Payload) -> ReadWriteSet;

    /// Issue the state transaction for this event.
    fn state_access(&self, payload: &Self::Payload, txn: &mut TxnBuilder);

    /// Post-process using the results of the state access.
    fn post_process(&self, payload: &Self::Payload, blotter: &EventBlotter) -> PostAction;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstream_state::Value;
    use tstream_stream::operator::StateRef;

    /// A miniature application used to exercise the trait surface.
    struct Doubler;

    impl Application for Doubler {
        type Payload = u64;

        fn name(&self) -> &'static str {
            "doubler"
        }

        fn pre_process(&self, payload: &u64) -> bool {
            *payload < 100
        }

        fn read_write_set(&self, payload: &u64) -> ReadWriteSet {
            ReadWriteSet::new().write(StateRef::new(0, *payload))
        }

        fn state_access(&self, payload: &u64, txn: &mut TxnBuilder) {
            txn.read_modify(0, *payload, None, |ctx| {
                Ok(Value::Long(ctx.current.as_long()? * 2))
            });
        }

        fn post_process(&self, _payload: &u64, blotter: &EventBlotter) -> PostAction {
            if blotter.is_aborted() {
                PostAction::Silent
            } else {
                PostAction::Emit
            }
        }
    }

    #[test]
    fn trait_round_trip() {
        let app = Doubler;
        assert_eq!(app.name(), "doubler");
        assert!(app.pre_process(&5));
        assert!(!app.pre_process(&200), "filtered events are dropped");
        let set = app.read_write_set(&5);
        assert_eq!(set.len(), 1);
        let mut builder = TxnBuilder::new(1);
        app.state_access(&5, &mut builder);
        let (txn, blotter) = builder.build();
        assert_eq!(txn.len(), 1);
        assert_eq!(app.post_process(&5, &blotter), PostAction::Emit);
        blotter.mark_aborted("x");
        assert_eq!(app.post_process(&5, &blotter), PostAction::Silent);
    }
}
