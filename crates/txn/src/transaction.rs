//! State transactions and the builder applications use to issue them.

use std::sync::Arc;

use tstream_state::{StateResult, Value};
use tstream_stream::operator::{AccessMode, ReadWriteSet, StateRef};

use crate::blotter::{BlotterHandle, EventBlotter};
use crate::operation::{AccessType, OpCtx, OpFunc, Operation, INVALID_SLOT};
use crate::Timestamp;

/// The set of state accesses triggered by processing of a single input event
/// at an operator (Definition 1 of the paper).
#[derive(Debug, Clone)]
pub struct StateTransaction {
    /// Timestamp of the triggering event.
    pub ts: Timestamp,
    /// Decomposed operations, in issue order.
    pub ops: Vec<Operation>,
    /// Result carrier shared with the triggering event.
    pub blotter: BlotterHandle,
}

impl StateTransaction {
    /// Transaction length (number of operations), the metric the paper's
    /// workload descriptions use.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction issues no state access at all.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Distinct states touched (targets plus declared dependencies).
    pub fn touched_states(&self) -> Vec<StateRef> {
        let mut v: Vec<StateRef> = self
            .ops
            .iter()
            .flat_map(|op| std::iter::once(op.target).chain(op.dependency))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The read/write set of the transaction, derived from its operations
    /// (dependencies count as reads).  Used by schemes that were not given a
    /// pre-computed set.
    pub fn read_write_set(&self) -> ReadWriteSet {
        let mut set = ReadWriteSet::new();
        for op in &self.ops {
            let mode = if op.is_write() {
                AccessMode::Write
            } else {
                AccessMode::Read
            };
            set.push(op.target, mode);
            if let Some(dep) = op.dependency {
                set.push(dep, AccessMode::Read);
            }
        }
        set
    }

    /// Resolve every operation's target (and dependency) to its record slot
    /// via `slot_for` — typically backed by the slots the router resolved at
    /// ingestion time from the determined read/write set.  `slot_for` returns
    /// [`INVALID_SLOT`] for states it cannot resolve; those operations keep
    /// the keyed-lookup fallback.
    pub fn resolve_slots(&mut self, mut slot_for: impl FnMut(StateRef) -> u32) {
        for op in &mut self.ops {
            op.slot = slot_for(op.target);
            if let Some(dep) = op.dependency {
                op.dep_slot = slot_for(dep);
            }
        }
    }
}

/// Builder used inside an application's `STATE_ACCESS` implementation
/// (Algorithms 2–4 of the paper) to issue the operations of one transaction.
#[derive(Debug)]
pub struct TxnBuilder {
    ts: Timestamp,
    ops: Vec<PendingOp>,
}

struct PendingOp {
    target: StateRef,
    access: AccessType,
    dependency: Option<StateRef>,
    func: Option<OpFunc>,
}

impl std::fmt::Debug for PendingOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingOp")
            .field("target", &self.target)
            .field("access", &self.access)
            .field("dependency", &self.dependency)
            .field("has_func", &self.func.is_some())
            .finish()
    }
}

impl TxnBuilder {
    /// Starts building the transaction for the event with timestamp `ts`.
    pub fn new(ts: Timestamp) -> Self {
        TxnBuilder {
            ts,
            ops: Vec::new(),
        }
    }

    /// Timestamp of the transaction under construction.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// Number of operations issued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations were issued yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// `READ(table, key)`: read a state; its value becomes available in the
    /// blotter slot with this operation's index.  Returns the slot index.
    pub fn read(&mut self, table: u32, key: u64) -> usize {
        self.push(PendingOp {
            target: StateRef::new(table, key),
            access: AccessType::Read,
            dependency: None,
            func: None,
        })
    }

    /// `WRITE(table, key, v)`: unconditionally overwrite a state.
    pub fn write_value(&mut self, table: u32, key: u64, value: Value) -> usize {
        self.write_with(table, key, None, move |_ctx| Ok(value.clone()))
    }

    /// `WRITE(table, key, Fun, CFun)`: overwrite a state with a computed
    /// value; `dependency` (if any) names the state the function may consult
    /// — a cross-chain data dependency under TStream.
    pub fn write_with(
        &mut self,
        table: u32,
        key: u64,
        dependency: Option<StateRef>,
        func: impl Fn(&OpCtx<'_>) -> StateResult<Value> + Send + Sync + 'static,
    ) -> usize {
        self.push(PendingOp {
            target: StateRef::new(table, key),
            access: AccessType::Write,
            dependency,
            func: Some(Arc::new(func)),
        })
    }

    /// `READ_MODIFY(table, key, Fun, CFun)`: read-modify-write a state; the
    /// produced value is also recorded in the blotter.
    pub fn read_modify(
        &mut self,
        table: u32,
        key: u64,
        dependency: Option<StateRef>,
        func: impl Fn(&OpCtx<'_>) -> StateResult<Value> + Send + Sync + 'static,
    ) -> usize {
        self.push(PendingOp {
            target: StateRef::new(table, key),
            access: AccessType::ReadModify,
            dependency,
            func: Some(Arc::new(func)),
        })
    }

    fn push(&mut self, op: PendingOp) -> usize {
        let idx = self.ops.len();
        self.ops.push(op);
        idx
    }

    /// Finish building: allocate the blotter (one result slot per operation)
    /// and produce the transaction.
    pub fn build(self) -> (StateTransaction, BlotterHandle) {
        let blotter = EventBlotter::new(self.ops.len());
        let ops = self
            .ops
            .into_iter()
            .enumerate()
            .map(|(i, p)| Operation {
                ts: self.ts,
                op_index: i as u32,
                target: p.target,
                slot: INVALID_SLOT,
                access: p.access,
                dependency: p.dependency,
                dep_slot: INVALID_SLOT,
                func: p.func,
                blotter: blotter.clone(),
            })
            .collect();
        (
            StateTransaction {
                ts: self.ts,
                ops,
                blotter: blotter.clone(),
            },
            blotter,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_op_indices_in_issue_order() {
        let mut b = TxnBuilder::new(9);
        assert!(b.is_empty());
        let r0 = b.read(0, 1);
        let r1 = b.write_value(1, 2, Value::Long(5));
        let r2 = b.read_modify(0, 3, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
        assert_eq!((r0, r1, r2), (0, 1, 2));
        assert_eq!(b.len(), 3);
        let (txn, blotter) = b.build();
        assert_eq!(txn.ts, 9);
        assert_eq!(txn.len(), 3);
        assert_eq!(blotter.slots(), 3);
        assert_eq!(txn.ops[1].access, AccessType::Write);
        assert_eq!(txn.ops[2].access, AccessType::ReadModify);
    }

    #[test]
    fn touched_states_include_dependencies() {
        let mut b = TxnBuilder::new(0);
        b.write_with(1, 10, Some(StateRef::new(0, 20)), |ctx| {
            Ok(ctx.current.clone())
        });
        let (txn, _) = b.build();
        let touched = txn.touched_states();
        assert!(touched.contains(&StateRef::new(1, 10)));
        assert!(touched.contains(&StateRef::new(0, 20)));
    }

    #[test]
    fn derived_read_write_set_classifies_accesses() {
        let mut b = TxnBuilder::new(0);
        b.read(0, 1);
        b.write_value(0, 2, Value::Long(1));
        b.write_with(1, 3, Some(StateRef::new(0, 1)), |_| Ok(Value::Long(0)));
        let (txn, _) = b.build();
        let set = txn.read_write_set();
        assert_eq!(set.write_set().len(), 2);
        assert!(set.read_set().contains(&StateRef::new(0, 1)));
    }

    #[test]
    fn empty_transaction_is_allowed() {
        let (txn, blotter) = TxnBuilder::new(3).build();
        assert!(txn.is_empty());
        assert_eq!(blotter.slots(), 0);
        assert!(txn.touched_states().is_empty());
    }

    #[test]
    fn write_value_closure_produces_constant() {
        let mut b = TxnBuilder::new(0);
        b.write_value(0, 0, Value::Long(77));
        let (txn, _) = b.build();
        let out = txn.ops[0].evaluate(&Value::Long(1), None).unwrap();
        assert_eq!(out, Some(Value::Long(77)));
    }
}
