//! Decomposed state-access operations.
//!
//! TStream "conceptually decomposes each state transaction into multiple
//! operations, each targeting one state" (Section III, D2).  The same
//! decomposition is used by every scheme in this reproduction: one invocation
//! of the system-provided APIs `READ`, `WRITE` or `READ_MODIFY` (Table III)
//! becomes one [`Operation`].

use std::fmt;
use std::sync::Arc;

use tstream_state::{StateError, StateResult, Value};
use tstream_stream::operator::StateRef;

use crate::blotter::BlotterHandle;
use crate::Timestamp;

/// The kind of access an operation performs (Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// `READ(key)` — read the state and store the result in the blotter.
    Read,
    /// `WRITE(key, value, CFun)` — overwrite the state; the new value is
    /// produced by the operation's function (which may consult a dependency
    /// state and may reject the update).
    Write,
    /// `READ_MODIFY(key, Fun, CFun)` — read the current value and replace it
    /// with `Fun(current)`; the produced value is also stored in the blotter.
    ReadModify,
}

impl AccessType {
    /// Whether the operation writes its target state.
    pub fn is_write(&self) -> bool {
        !matches!(self, AccessType::Read)
    }
}

/// Evaluation context handed to an operation's user function.
#[derive(Debug)]
pub struct OpCtx<'a> {
    /// Current value of the target state, visible at the operation's
    /// timestamp.
    pub current: &'a Value,
    /// Value of the dependency state (if the operation declared one), visible
    /// at the operation's timestamp.
    pub dependency: Option<&'a Value>,
    /// Timestamp of the enclosing transaction.
    pub ts: Timestamp,
}

/// User function of a WRITE / READ_MODIFY operation: computes the new value
/// (possibly from the current value and a dependency) or signals a
/// consistency violation, which aborts the transaction.
pub type OpFunc = Arc<dyn Fn(&OpCtx<'_>) -> StateResult<Value> + Send + Sync>;

/// Sentinel for an operation whose target (or dependency) has not been
/// resolved to a record slot.  Execution falls back to the keyed index
/// lookup, so an unresolved slot is never wrong — only slower.
pub const INVALID_SLOT: u32 = u32::MAX;

/// A single decomposed state access.
#[derive(Clone)]
pub struct Operation {
    /// Timestamp of the transaction this operation belongs to.
    pub ts: Timestamp,
    /// Index of this operation within its transaction (also the blotter slot
    /// its result lands in).
    pub op_index: u32,
    /// Target state.
    pub target: StateRef,
    /// Record slot of the target state, resolved once at routing time on the
    /// ingestion thread (the determined read/write set makes this possible —
    /// feature F2).  [`INVALID_SLOT`] when unresolved; execution then falls
    /// back to the keyed index lookup.
    pub slot: u32,
    /// Kind of access.
    pub access: AccessType,
    /// State this operation's function additionally reads (a cross-state
    /// data dependency, e.g. SL's transfer reading the source account while
    /// crediting the destination).
    pub dependency: Option<StateRef>,
    /// Record slot of the dependency state; [`INVALID_SLOT`] when absent or
    /// unresolved.
    pub dep_slot: u32,
    /// New-value function for writes; `None` for plain reads.
    pub func: Option<OpFunc>,
    /// Result carrier of the triggering event.
    pub blotter: BlotterHandle,
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Operation")
            .field("ts", &self.ts)
            .field("op_index", &self.op_index)
            .field("target", &self.target)
            .field("access", &self.access)
            .field("dependency", &self.dependency)
            .field("has_func", &self.func.is_some())
            .finish()
    }
}

impl Operation {
    /// Evaluate the operation against explicit current/dependency values and
    /// return the value to install (for writes) — `None` for plain reads.
    ///
    /// Recording into the blotter: reads record the current value,
    /// read-modifies record the newly produced value, writes record nothing.
    /// Consistency violations are returned as errors; the caller decides how
    /// to abort.
    pub fn evaluate(
        &self,
        current: &Value,
        dependency: Option<&Value>,
    ) -> StateResult<Option<Value>> {
        match self.access {
            AccessType::Read => {
                self.blotter.record(self.op_index as usize, current.clone());
                Ok(None)
            }
            AccessType::Write | AccessType::ReadModify => {
                let func = self.func.as_ref().ok_or_else(|| {
                    StateError::InvalidDefinition(format!(
                        "write operation {} of txn {} has no function",
                        self.op_index, self.ts
                    ))
                })?;
                let ctx = OpCtx {
                    current,
                    dependency,
                    ts: self.ts,
                };
                let new_value = func(&ctx)?;
                if self.access == AccessType::ReadModify {
                    self.blotter
                        .record(self.op_index as usize, new_value.clone());
                }
                Ok(Some(new_value))
            }
        }
    }

    /// Whether this operation writes its target.
    pub fn is_write(&self) -> bool {
        self.access.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blotter::EventBlotter;

    fn read_op(blotter: BlotterHandle) -> Operation {
        Operation {
            ts: 1,
            op_index: 0,
            target: StateRef::new(0, 5),
            slot: INVALID_SLOT,
            access: AccessType::Read,
            dependency: None,
            dep_slot: INVALID_SLOT,
            func: None,
            blotter,
        }
    }

    #[test]
    fn read_records_current_value() {
        let b = EventBlotter::new(1);
        let op = read_op(b.clone());
        let out = op.evaluate(&Value::Long(42), None).unwrap();
        assert_eq!(out, None);
        assert_eq!(b.result_long(0), 42);
    }

    #[test]
    fn read_modify_produces_and_records_new_value() {
        let b = EventBlotter::new(1);
        let op = Operation {
            ts: 2,
            op_index: 0,
            target: StateRef::new(0, 5),
            slot: INVALID_SLOT,
            access: AccessType::ReadModify,
            dependency: None,
            dep_slot: INVALID_SLOT,
            func: Some(Arc::new(|ctx: &OpCtx<'_>| {
                Ok(Value::Long(ctx.current.as_long()? + 10))
            })),
            blotter: b.clone(),
        };
        let out = op.evaluate(&Value::Long(5), None).unwrap();
        assert_eq!(out, Some(Value::Long(15)));
        assert_eq!(b.result_long(0), 15);
    }

    #[test]
    fn write_with_dependency_condition() {
        let b = EventBlotter::new(1);
        let op = Operation {
            ts: 3,
            op_index: 0,
            target: StateRef::new(1, 7),
            slot: INVALID_SLOT,
            access: AccessType::Write,
            dependency: Some(StateRef::new(0, 3)),
            dep_slot: INVALID_SLOT,
            func: Some(Arc::new(|ctx: &OpCtx<'_>| {
                let src = ctx.dependency.expect("dependency required").as_long()?;
                if src >= 100 {
                    Ok(Value::Long(ctx.current.as_long()? + 100))
                } else {
                    Err(StateError::ConsistencyViolation(
                        "insufficient balance".into(),
                    ))
                }
            })),
            blotter: b,
        };
        // Enough balance: the write succeeds.
        let out = op
            .evaluate(&Value::Long(50), Some(&Value::Long(200)))
            .unwrap();
        assert_eq!(out, Some(Value::Long(150)));
        // Not enough: consistency violation bubbles up.
        let err = op
            .evaluate(&Value::Long(50), Some(&Value::Long(10)))
            .unwrap_err();
        assert!(matches!(err, StateError::ConsistencyViolation(_)));
    }

    #[test]
    fn write_without_function_is_invalid() {
        let b = EventBlotter::new(1);
        let op = Operation {
            ts: 1,
            op_index: 0,
            target: StateRef::new(0, 0),
            slot: INVALID_SLOT,
            access: AccessType::Write,
            dependency: None,
            dep_slot: INVALID_SLOT,
            func: None,
            blotter: b,
        };
        assert!(matches!(
            op.evaluate(&Value::Long(0), None),
            Err(StateError::InvalidDefinition(_))
        ));
    }

    #[test]
    fn access_type_write_predicate() {
        assert!(!AccessType::Read.is_write());
        assert!(AccessType::Write.is_write());
        assert!(AccessType::ReadModify.is_write());
    }

    #[test]
    fn debug_format_omits_closures() {
        let b = EventBlotter::new(1);
        let op = read_op(b);
        let s = format!("{op:?}");
        assert!(s.contains("op_index"));
        assert!(s.contains("has_func"));
    }
}
