//! MVLK: multi-version locking with per-state `lwm` watermarks.
//!
//! Re-implementation of the multi-version variant of Wang et al.
//! (Section II-C.2).  Every state keeps a low-water-mark counter (`lwm`) that
//! tracks how many writes have been applied to it:
//!
//! * a **write** is admitted only when the state's `lwm` equals the write's
//!   position among all writes to that state in timestamp order (so writes to
//!   one state apply strictly in timestamp order);
//! * a **read** only has to wait until every write with a *smaller* timestamp
//!   has been applied; it then picks the version visible at its timestamp, so
//!   it is never blocked by writers with larger timestamps — the relaxation
//!   that distinguishes MVLK from LOCK.
//!
//! The positions ("write indices") are derived from the determined read/write
//! sets (feature F2) in timestamp order during batch preparation, mirroring
//! the counter bookkeeping of the original scheme.  Versions created during a
//! batch are folded into the committed values at the end of the batch.

use std::collections::HashMap;

use parking_lot::Mutex;
use tstream_state::{StateStore, TableId, Value};
use tstream_stream::metrics::{Breakdown, Component, ComponentTimer};
use tstream_stream::operator::{AccessMode, StateRef};

use crate::outcome::TxnOutcome;
use crate::scheme::{EagerScheme, ExecEnv, TxnDescriptor};
use crate::transaction::StateTransaction;
use crate::Timestamp;

/// Per-state admission information for one transaction.
#[derive(Debug, Clone, Copy, Default)]
struct StateSlot {
    /// Number of writes to this state by transactions with smaller
    /// timestamps (what a read must wait for).
    prior_writes: u64,
    /// Index of this transaction's first write to the state, if it writes it.
    first_write_index: u64,
    /// How many times this transaction writes the state.
    writes_by_txn: u64,
}

/// Admission plan of one transaction.
#[derive(Debug, Clone, Default)]
struct MvlkPlan {
    slots: HashMap<StateRef, StateSlot>,
}

/// The MVLK scheme.
#[derive(Debug, Default)]
pub struct MvlkScheme {
    /// Cumulative number of writes assigned per state (prepare-side).
    assigned_writes: Mutex<HashMap<StateRef, u64>>,
    /// Plans for not-yet-executed transactions.
    plans: Mutex<HashMap<Timestamp, MvlkPlan>>,
    /// States written during the current batch (for end-of-batch collapse).
    dirty: Mutex<Vec<StateRef>>,
}

impl MvlkScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EagerScheme for MvlkScheme {
    fn name(&self) -> &'static str {
        "MVLK"
    }

    fn prepare_batch(&self, batch: &[TxnDescriptor]) {
        let mut descriptors: Vec<&TxnDescriptor> = batch.iter().collect();
        descriptors.sort_by_key(|d| d.ts);
        let mut assigned = self.assigned_writes.lock();
        let mut plans = self.plans.lock();
        let mut dirty = self.dirty.lock();
        for d in descriptors {
            let mut plan = MvlkPlan::default();
            // First pass: snapshot prior write counts for every touched state.
            for (state, _) in d.rw_set.iter() {
                plan.slots.entry(*state).or_insert_with(|| StateSlot {
                    prior_writes: assigned.get(state).copied().unwrap_or(0),
                    first_write_index: 0,
                    writes_by_txn: 0,
                });
            }
            // Second pass: allocate write indices in declaration order.
            for (state, mode) in d.rw_set.iter() {
                if *mode == AccessMode::Write {
                    let counter = assigned.entry(*state).or_insert(0);
                    let slot = plan.slots.get_mut(state).expect("slot inserted above");
                    if slot.writes_by_txn == 0 {
                        slot.first_write_index = *counter;
                        dirty.push(*state);
                    }
                    slot.writes_by_txn += 1;
                    *counter += 1;
                }
            }
            plans.insert(d.ts, plan);
        }
    }

    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome {
        let plan = self.plans.lock().remove(&txn.ts).unwrap_or_default();
        let mut failure: Option<String> = None;

        // ---- Phase 1: evaluate every operation against the versions visible
        // at this transaction's timestamp, producing the values to install.
        // Nothing is installed yet, so an abort discovered at a later
        // operation can simply discard the plan — no reader ever observes a
        // version of an aborted transaction (atomicity, Section IV-D).
        let mut planned: Vec<Option<Value>> = Vec::with_capacity(txn.ops.len());
        for op in &txn.ops {
            let slot = plan.slots.get(&op.target).copied().unwrap_or_default();
            let record = match store.record(TableId(op.target.table), op.target.key) {
                Ok(r) => r,
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            };

            // Admission: all writes with smaller timestamps must be applied
            // before we may read the target (the `lwm` comparison of the
            // paper); same for the dependency state.
            let t = ComponentTimer::start();
            record.write_gate().wait_at_least(slot.prior_writes);
            let dep_record = match op.dependency {
                Some(dep) => match store.record(TableId(dep.table), dep.key) {
                    Ok(r) => {
                        let dep_prior = plan.slots.get(&dep).map(|s| s.prior_writes).unwrap_or(0);
                        r.write_gate().wait_at_least(dep_prior);
                        Some(r)
                    }
                    Err(e) => {
                        failure = Some(e.to_string());
                        break;
                    }
                },
                None => None,
            };
            t.stop(breakdown, Component::Sync);

            // Evaluate against timestamp-visible values.
            let remote =
                env.is_remote(op.target.key) || op.dependency.is_some_and(|d| env.is_remote(d.key));
            let t_access = ComponentTimer::start();
            if remote {
                env.remote_penalty();
            }
            let current = record.read_visible(op.ts);
            let dep_value = dep_record.map(|r| r.read_visible(op.ts));
            let produced = op.evaluate(&current, dep_value.as_ref());
            t_access.stop(
                breakdown,
                if remote {
                    Component::Rma
                } else {
                    Component::Useful
                },
            );
            match produced {
                Ok(value) => planned.push(value),
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }

        // ---- Phase 2: pass every write position of this transaction through
        // the per-state counters in order, installing the planned versions
        // only if the whole transaction validated.  Aborted transactions
        // still advance the counters so later writers are not stranded; the
        // counter updates are charged to Others (the paper's lwm-maintenance
        // cost).
        let committed = failure.is_none();
        let mut writes_done: HashMap<StateRef, u64> = HashMap::new();
        for (i, op) in txn.ops.iter().enumerate() {
            if !op.is_write() {
                continue;
            }
            let Ok(record) = store.record(TableId(op.target.table), op.target.key) else {
                continue;
            };
            let slot = plan.slots.get(&op.target).copied().unwrap_or_default();
            let my_write_index =
                slot.first_write_index + writes_done.get(&op.target).copied().unwrap_or(0);
            let t = ComponentTimer::start();
            record.write_gate().wait_exact(my_write_index);
            t.stop(breakdown, Component::Sync);

            if committed {
                if let Some(Some(value)) = planned.get(i) {
                    let t_access = ComponentTimer::start();
                    record.install_version(op.ts, value.clone());
                    t_access.stop(breakdown, Component::Useful);
                }
            }
            let t = ComponentTimer::start();
            record.write_gate().advance();
            *writes_done.entry(op.target).or_insert(0) += 1;
            t.stop(breakdown, Component::Others);
        }

        match failure {
            None => TxnOutcome::Committed,
            Some(reason) => {
                txn.blotter.mark_aborted(reason.clone());
                TxnOutcome::aborted(reason)
            }
        }
    }

    fn end_batch(&self, store: &StateStore) {
        // Fold the newest version of every dirty state into its committed
        // value (versions older than the newest are garbage collected).
        let mut dirty = self.dirty.lock();
        dirty.sort_unstable();
        dirty.dedup();
        for state in dirty.drain(..) {
            if let Ok(record) = store.record(TableId(state.table), state.key) {
                record.collapse_versions();
            }
        }
    }

    fn reset(&self) {
        self.assigned_writes.lock().clear();
        self.plans.lock().clear();
        self.dirty.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use tstream_state::{StateStore, TableBuilder, Value};
    use tstream_stream::operator::ReadWriteSet;

    fn store(keys: u64) -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    fn add_txn(ts: u64, key: u64, delta: i64) -> (StateTransaction, TxnDescriptor) {
        let mut b = TxnBuilder::new(ts);
        b.read_modify(0, key, None, move |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + delta))
        });
        let set = ReadWriteSet::new().write(StateRef::new(0, key));
        (b.build().0, TxnDescriptor::unresolved(ts, set))
    }

    fn run_concurrently(
        scheme: &Arc<MvlkScheme>,
        store: &Arc<StateStore>,
        txns: Vec<StateTransaction>,
        threads: usize,
    ) {
        let next = Arc::new(AtomicUsize::new(0));
        let txns = Arc::new(txns);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let scheme = scheme.clone();
                let store = store.clone();
                let txns = txns.clone();
                let next = next.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= txns.len() {
                            break;
                        }
                        scheme.execute(&txns[i], &store, &env, &mut breakdown);
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_increments_apply_exactly_once_each() {
        let store = store(8);
        let scheme = Arc::new(MvlkScheme::new());
        let count = 256u64;
        let mut txns = Vec::new();
        let mut descs = Vec::new();
        for ts in 0..count {
            let (t, d) = add_txn(ts, ts % 8, 1);
            txns.push(t);
            descs.push(d);
        }
        scheme.prepare_batch(&descs);
        run_concurrently(&scheme, &store, txns, 8);
        scheme.end_batch(&store);
        let total: i64 = (0..8u64)
            .map(|k| {
                store
                    .record(TableId(0), k)
                    .unwrap()
                    .read_committed()
                    .as_long()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, count as i64);
    }

    #[test]
    fn reads_observe_timestamp_consistent_values() {
        // txn 0 writes key 0 := 10; txn 1 reads key 0; txn 2 writes key 0 := 20.
        // Under a correct schedule the read of txn 1 must observe 10 — never
        // 0 (too old) or 20 (too new) — regardless of thread interleaving.
        for _ in 0..20 {
            let store = store(1);
            let scheme = Arc::new(MvlkScheme::new());

            let mut b0 = TxnBuilder::new(0);
            b0.write_value(0, 0, Value::Long(10));
            let (t0, _) = b0.build();
            let d0 = TxnDescriptor::unresolved(0, ReadWriteSet::new().write(StateRef::new(0, 0)));

            let mut b1 = TxnBuilder::new(1);
            b1.read(0, 0);
            let (t1, blotter1) = b1.build();
            let d1 = TxnDescriptor::unresolved(1, ReadWriteSet::new().read(StateRef::new(0, 0)));

            let mut b2 = TxnBuilder::new(2);
            b2.write_value(0, 0, Value::Long(20));
            let (t2, _) = b2.build();
            let d2 = TxnDescriptor::unresolved(2, ReadWriteSet::new().write(StateRef::new(0, 0)));

            scheme.prepare_batch(&[d0, d1, d2]);
            run_concurrently(&scheme, &store, vec![t0, t1, t2], 3);
            scheme.end_batch(&store);

            assert_eq!(blotter1.result_long(0), 10);
            assert_eq!(
                store.record(TableId(0), 0).unwrap().read_committed(),
                Value::Long(20)
            );
        }
    }

    #[test]
    fn aborted_write_does_not_stall_later_writers() {
        let store = store(1);
        let scheme = Arc::new(MvlkScheme::new());

        // txn 0 aborts after being admitted; txn 1 then writes the key.
        let mut b0 = TxnBuilder::new(0);
        b0.read_modify(0, 0, None, |_| {
            Err(tstream_state::StateError::ConsistencyViolation("no".into()))
        });
        let (t0, blotter0) = b0.build();
        let d0 = TxnDescriptor::unresolved(0, ReadWriteSet::new().write(StateRef::new(0, 0)));
        let (t1, d1) = add_txn(1, 0, 5);
        scheme.prepare_batch(&[d0, d1]);
        run_concurrently(&scheme, &store, vec![t0, t1], 2);
        scheme.end_batch(&store);

        assert!(blotter0.is_aborted());
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(5)
        );
    }

    #[test]
    fn reset_clears_cross_batch_counters() {
        let store = store(1);
        let scheme = MvlkScheme::new();
        let (t0, d0) = add_txn(0, 0, 1);
        scheme.prepare_batch(&[d0]);
        let env = ExecEnv::single();
        let mut b = Breakdown::new();
        scheme.execute(&t0, &store, &env, &mut b);
        scheme.end_batch(&store);
        assert!(!scheme.assigned_writes.lock().is_empty());
        scheme.reset();
        assert!(scheme.assigned_writes.lock().is_empty());
        assert!(scheme.plans.lock().is_empty());
    }
}
