//! OCC: backward-validation optimistic concurrency control.
//!
//! Section II-C of the paper notes that "other existing CCs (e.g., OCC) are
//! similarly not designed with an awareness of state access order (F3)".
//! This module implements a classic three-phase OCC scheme so that claim can
//! be demonstrated alongside the T/O scheme (`sec2c_order_unaware` harness):
//!
//! 1. **Read phase** — the transaction reads committed values and remembers,
//!    for every state it touched, the state's commit counter at read time;
//!    writes are buffered locally;
//! 2. **Validation phase** — under a (per-scheme) critical section the
//!    transaction checks that none of the states it read has been committed
//!    to since its read phase;
//! 3. **Write phase** — still inside the critical section, buffered writes
//!    are installed and the commit counters of the written states are bumped.
//!
//! Failed validation restarts the read phase (bounded by
//! [`OccScheme::max_retries`]); the transaction keeps its original timestamp,
//! so retries do not re-order it — but OCC serialises transactions in
//! *commit* order, not event-timestamp order, so the final state can diverge
//! from the correct state transaction schedule (Definition 2) whenever two
//! conflicting transactions happen to validate out of timestamp order.
//! That divergence, together with the retry rate under contention, is exactly
//! what the harness measures.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use tstream_state::{StateStore, TableId, Value};
use tstream_stream::metrics::{Breakdown, Component, ComponentTimer};
use tstream_stream::operator::StateRef;

use crate::outcome::TxnOutcome;
use crate::scheme::{EagerScheme, ExecEnv, TxnDescriptor};
use crate::transaction::StateTransaction;

/// Default bound on validation retries before the transaction is rejected.
pub const DEFAULT_MAX_RETRIES: u32 = 64;

/// The OCC scheme.
#[derive(Debug)]
pub struct OccScheme {
    /// Per-state commit counters consulted during validation.
    commit_counters: Mutex<HashMap<StateRef, u64>>,
    /// Validation + write phases run under this critical section (classic
    /// serial-validation OCC).
    validation: Mutex<()>,
    /// Upper bound on read-phase restarts per transaction.
    max_retries: u32,
    /// Validation failures observed (each failure triggers one retry).
    validation_failures: AtomicU64,
    /// Transactions rejected after exhausting their retries.
    rejections: AtomicU64,
    /// Transactions that committed only after at least one retry.
    retried_commits: AtomicU64,
}

impl Default for OccScheme {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_RETRIES)
    }
}

impl OccScheme {
    /// Creates the scheme with the given retry bound.
    pub fn new(max_retries: u32) -> Self {
        OccScheme {
            commit_counters: Mutex::new(HashMap::new()),
            validation: Mutex::new(()),
            max_retries,
            validation_failures: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            retried_commits: AtomicU64::new(0),
        }
    }

    /// Retry bound per transaction.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Number of validation failures observed so far.
    pub fn validation_failures(&self) -> u64 {
        self.validation_failures.load(Ordering::Relaxed)
    }

    /// Number of transactions rejected after exhausting their retries.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Number of transactions that needed at least one retry to commit.
    pub fn retried_commits(&self) -> u64 {
        self.retried_commits.load(Ordering::Relaxed)
    }

    /// Counter snapshot of one state (0 if never written).
    fn counter_of(counters: &HashMap<StateRef, u64>, state: &StateRef) -> u64 {
        counters.get(state).copied().unwrap_or(0)
    }

    /// One read-phase attempt: evaluate every operation against the committed
    /// values, buffering writes.  Returns the read-set snapshot and the write
    /// buffer, or the application-level abort reason.
    #[allow(clippy::type_complexity)]
    fn read_phase(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        breakdown: &mut Breakdown,
    ) -> Result<(HashMap<StateRef, u64>, Vec<(StateRef, Value)>), String> {
        let mut read_set: HashMap<StateRef, u64> = HashMap::new();
        let mut write_buffer: Vec<(StateRef, Value)> = Vec::new();
        // Values already written by this transaction are visible to its own
        // later operations (read-your-writes within the buffer).
        let mut local: HashMap<StateRef, Value> = HashMap::new();

        let t = ComponentTimer::start();
        {
            let counters = self.commit_counters.lock();
            for op in &txn.ops {
                for state in std::iter::once(op.target).chain(op.dependency) {
                    read_set
                        .entry(state)
                        .or_insert_with(|| Self::counter_of(&counters, &state));
                }
            }
        }
        t.stop(breakdown, Component::Sync);

        let t = ComponentTimer::start();
        for op in &txn.ops {
            let committed = match local.get(&op.target) {
                Some(v) => v.clone(),
                None => match store.record(TableId(op.target.table), op.target.key) {
                    Ok(r) => r.read_committed(),
                    Err(e) => {
                        t.stop(breakdown, Component::Useful);
                        return Err(e.to_string());
                    }
                },
            };
            let dep_value = match op.dependency {
                Some(dep) => match local.get(&dep) {
                    Some(v) => Some(v.clone()),
                    None => store
                        .record(TableId(dep.table), dep.key)
                        .ok()
                        .map(|r| r.read_committed()),
                },
                None => None,
            };
            match op.evaluate(&committed, dep_value.as_ref()) {
                Ok(Some(new_value)) => {
                    local.insert(op.target, new_value.clone());
                    write_buffer.push((op.target, new_value));
                }
                Ok(None) => {}
                Err(e) => {
                    t.stop(breakdown, Component::Useful);
                    return Err(e.to_string());
                }
            }
        }
        t.stop(breakdown, Component::Useful);
        Ok((read_set, write_buffer))
    }
}

impl EagerScheme for OccScheme {
    fn name(&self) -> &'static str {
        "OCC"
    }

    fn prepare_batch(&self, _batch: &[TxnDescriptor]) {}

    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        _env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome {
        let mut attempts = 0u32;
        loop {
            // ---- Read phase.
            let (read_set, write_buffer) = match self.read_phase(txn, store, breakdown) {
                Ok(parts) => parts,
                Err(reason) => {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    txn.blotter.mark_aborted(reason.clone());
                    return TxnOutcome::aborted(reason);
                }
            };

            // ---- Validation + write phase (serial critical section).
            let t = ComponentTimer::start();
            let committed = {
                let _serial = self.validation.lock();
                let mut counters = self.commit_counters.lock();
                let valid = read_set
                    .iter()
                    .all(|(state, seen)| Self::counter_of(&counters, state) == *seen);
                if valid {
                    for (state, value) in &write_buffer {
                        if let Ok(record) = store.record(TableId(state.table), state.key) {
                            record.write_committed(value.clone());
                        }
                        *counters.entry(*state).or_insert(0) += 1;
                    }
                }
                valid
            };
            t.stop(breakdown, Component::Sync);

            if committed {
                if attempts > 0 {
                    self.retried_commits.fetch_add(1, Ordering::Relaxed);
                }
                return TxnOutcome::Committed;
            }

            self.validation_failures.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            if attempts > self.max_retries {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                txn.blotter.mark_aborted("OCC validation retries exhausted");
                return TxnOutcome::aborted("OCC validation retries exhausted");
            }
        }
    }

    fn end_batch(&self, _store: &StateStore) {}

    fn reset(&self) {
        self.commit_counters.lock().clear();
        self.validation_failures.store(0, Ordering::Relaxed);
        self.rejections.store(0, Ordering::Relaxed);
        self.retried_commits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use std::sync::Arc;
    use tstream_state::{StateError, StateStore, TableBuilder};

    fn store(keys: u64) -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    fn increment_txn(ts: u64, key: u64) -> StateTransaction {
        let mut b = TxnBuilder::new(ts);
        b.read_modify(0, key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
        b.build().0
    }

    #[test]
    fn uncontended_transactions_commit_without_retries() {
        let store = store(8);
        let scheme = OccScheme::default();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        for ts in 0..64u64 {
            let txn = increment_txn(ts, ts % 8);
            assert!(scheme
                .execute(&txn, &store, &env, &mut breakdown)
                .is_committed());
        }
        assert_eq!(scheme.validation_failures(), 0);
        assert_eq!(scheme.retried_commits(), 0);
        assert_eq!(scheme.rejections(), 0);
        for k in 0..8u64 {
            assert_eq!(
                store.record(TableId(0), k).unwrap().read_committed(),
                Value::Long(8)
            );
        }
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        // OCC is order-unaware but still serialisable: concurrent increments
        // of the same key must all be reflected.
        let store = store(2);
        let scheme = Arc::new(OccScheme::default());
        let threads = 8usize;
        let per_thread = 100u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                let scheme = scheme.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    for i in 0..per_thread {
                        let ts = i * threads as u64 + t as u64;
                        let txn = increment_txn(ts, ts % 2);
                        assert!(scheme
                            .execute(&txn, &store, &env, &mut breakdown)
                            .is_committed());
                    }
                });
            }
        });
        let total: i64 = (0..2u64)
            .map(|k| {
                store
                    .record(TableId(0), k)
                    .unwrap()
                    .read_committed()
                    .as_long()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, (threads as u64 * per_thread) as i64);
    }

    #[test]
    fn commit_order_can_violate_timestamp_order() {
        // Two "stamp" transactions over the same key, executed in arrival
        // order 2 then 1.  OCC happily commits both; the final value is the
        // one committed last (ts=1), which differs from the correct schedule
        // (ts=2 should win).
        let store = store(1);
        let scheme = OccScheme::default();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        for ts in [2u64, 1u64] {
            let mut b = TxnBuilder::new(ts);
            b.write_value(0, 0, Value::Long(ts as i64));
            let (txn, _) = b.build();
            assert!(scheme
                .execute(&txn, &store, &env, &mut breakdown)
                .is_committed());
        }
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(1),
            "OCC serialises in commit order, not timestamp order"
        );
    }

    #[test]
    fn application_aborts_are_not_retried() {
        let store = store(1);
        let scheme = OccScheme::default();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        let mut b = TxnBuilder::new(0);
        b.read_modify(0, 0, None, |_| {
            Err(StateError::ConsistencyViolation("no".into()))
        });
        let (txn, blotter) = b.build();
        assert!(scheme
            .execute(&txn, &store, &env, &mut breakdown)
            .is_aborted());
        assert!(blotter.is_aborted());
        assert_eq!(scheme.validation_failures(), 0);
        assert_eq!(scheme.rejections(), 1);
    }

    #[test]
    fn zero_retry_budget_keeps_bookkeeping_consistent_under_contention() {
        // With no retry budget every validation failure becomes a rejection.
        // Regardless of how many failures actually occur under scheduling
        // noise, the committed increments must exactly equal the final value
        // (rejected work leaves no trace) and the statistics must balance.
        let store = store(1);
        let scheme = Arc::new(OccScheme::new(0));
        let threads = 6usize;
        let per_thread = 200u64;
        let committed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                let scheme = scheme.clone();
                let committed = committed.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    for i in 0..per_thread {
                        let ts = i * threads as u64 + t as u64;
                        let txn = increment_txn(ts, 0);
                        if scheme
                            .execute(&txn, &store, &env, &mut breakdown)
                            .is_committed()
                        {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let final_value = store
            .record(TableId(0), 0)
            .unwrap()
            .read_committed()
            .as_long()
            .unwrap();
        assert_eq!(final_value as u64, committed.load(Ordering::Relaxed));
        assert_eq!(scheme.validation_failures(), scheme.rejections());
        assert_eq!(
            committed.load(Ordering::Relaxed) + scheme.rejections(),
            threads as u64 * per_thread
        );
    }

    #[test]
    fn reset_clears_counters_and_statistics() {
        let store = store(1);
        let scheme = OccScheme::default();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        scheme.execute(&increment_txn(0, 0), &store, &env, &mut breakdown);
        assert!(!scheme.commit_counters.lock().is_empty());
        scheme.reset();
        assert!(scheme.commit_counters.lock().is_empty());
        assert_eq!(scheme.validation_failures(), 0);
        assert_eq!(scheme.rejections(), 0);
        assert_eq!(scheme.retried_commits(), 0);
    }

    #[test]
    fn accessors_report_configuration() {
        assert_eq!(OccScheme::default().max_retries(), DEFAULT_MAX_RETRIES);
        assert_eq!(OccScheme::new(3).max_retries(), 3);
    }
}
