//! The EventBlotter: the data bridge between state access and post-processing.
//!
//! The paper introduces the EventBlotter (Section IV-B.1) as the thread-local
//! auxiliary structure that tracks the parameters and results of a postponed
//! transaction.  In this reproduction it is also the result carrier for the
//! eager schemes, so post-processing is identical under every scheme.
//!
//! Under TStream the operations of one transaction can be evaluated by
//! *different* threads (they live in different operation chains), so result
//! slots are lock-free one-shot cells: every operation writes only its own
//! slot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tstream_state::Value;

/// Shared handle to an [`EventBlotter`].
pub type BlotterHandle = Arc<EventBlotter>;

/// Per-event result carrier.
#[derive(Debug)]
pub struct EventBlotter {
    /// One result slot per operation of the transaction, indexed by the
    /// operation's index within the transaction.  Slots are independent
    /// one-shot cells (an operation only ever writes its own slot), but they
    /// can be cleared wholesale by [`EventBlotter::reset`] when the engine
    /// replays a batch after a multi-write abort.
    results: Box<[Mutex<Option<Value>>]>,
    aborted: AtomicBool,
    abort_reason: Mutex<Option<String>>,
}

impl EventBlotter {
    /// Creates a blotter with `ops` result slots and returns a shared handle.
    pub fn new(ops: usize) -> BlotterHandle {
        Arc::new(EventBlotter {
            results: (0..ops).map(|_| Mutex::new(None)).collect(),
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
        })
    }

    /// Number of result slots.
    pub fn slots(&self) -> usize {
        self.results.len()
    }

    /// Record the result of operation `op_index`.  The first write wins;
    /// subsequent writes are ignored (an operation is evaluated exactly once
    /// per committed transaction, retries after aborts keep the first value
    /// unless the slot was [`EventBlotter::reset`] in between).
    pub fn record(&self, op_index: usize, value: Value) {
        if let Some(slot) = self.results.get(op_index) {
            let mut slot = slot.lock();
            if slot.is_none() {
                *slot = Some(value);
            }
        }
    }

    /// Read the result of operation `op_index`, if it was recorded.
    pub fn result(&self, op_index: usize) -> Option<Value> {
        self.results.get(op_index).and_then(|s| s.lock().clone())
    }

    /// Clear every result slot and the abort flag.
    ///
    /// Used by the engine before *replaying* a batch whose first pass aborted
    /// a multi-write transaction (Section IV-F): the replay re-evaluates
    /// every transaction of the batch against restored state, so results and
    /// abort decisions recorded by the first pass must be discarded.
    pub fn reset(&self) {
        for slot in self.results.iter() {
            *slot.lock() = None;
        }
        self.aborted.store(false, Ordering::Release);
        *self.abort_reason.lock() = None;
    }

    /// Read the result of operation `op_index` as a long, defaulting to 0.
    pub fn result_long(&self, op_index: usize) -> i64 {
        self.result(op_index)
            .and_then(|v| v.as_long().ok())
            .unwrap_or(0)
    }

    /// Read the result of operation `op_index` as a double, defaulting to 0.
    pub fn result_double(&self, op_index: usize) -> f64 {
        self.result(op_index)
            .and_then(|v| v.as_double().ok())
            .unwrap_or(0.0)
    }

    /// Mark the transaction aborted; the first reason sticks.
    pub fn mark_aborted(&self, reason: impl Into<String>) {
        if !self.aborted.swap(true, Ordering::AcqRel) {
            *self.abort_reason.lock() = Some(reason.into());
        }
    }

    /// Whether the transaction was aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Abort reason, if aborted.
    pub fn abort_reason(&self) -> Option<String> {
        self.abort_reason.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_results() {
        let b = EventBlotter::new(3);
        assert_eq!(b.slots(), 3);
        b.record(0, Value::Long(7));
        b.record(2, Value::Double(1.5));
        assert_eq!(b.result(0), Some(Value::Long(7)));
        assert_eq!(b.result(1), None);
        assert_eq!(b.result_long(0), 7);
        assert_eq!(b.result_double(2), 1.5);
        assert_eq!(b.result_long(1), 0, "missing results default to zero");
    }

    #[test]
    fn first_write_wins() {
        let b = EventBlotter::new(1);
        b.record(0, Value::Long(1));
        b.record(0, Value::Long(2));
        assert_eq!(b.result_long(0), 1);
    }

    #[test]
    fn out_of_range_record_is_ignored() {
        let b = EventBlotter::new(1);
        b.record(5, Value::Long(1));
        assert_eq!(b.result(5), None);
    }

    #[test]
    fn reset_clears_results_and_abort_state() {
        let b = EventBlotter::new(2);
        b.record(0, Value::Long(1));
        b.mark_aborted("first pass failed");
        b.reset();
        assert_eq!(b.result(0), None);
        assert!(!b.is_aborted());
        assert_eq!(b.abort_reason(), None);
        // After a reset the slots accept fresh values again.
        b.record(0, Value::Long(2));
        assert_eq!(b.result_long(0), 2);
    }

    #[test]
    fn abort_flag_and_reason() {
        let b = EventBlotter::new(0);
        assert!(!b.is_aborted());
        b.mark_aborted("insufficient balance");
        b.mark_aborted("second reason ignored");
        assert!(b.is_aborted());
        assert_eq!(b.abort_reason().unwrap(), "insufficient balance");
    }

    #[test]
    fn concurrent_slot_writes_are_safe() {
        let b = EventBlotter::new(64);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let b = &b;
                s.spawn(move || {
                    for i in (t..64).step_by(8) {
                        b.record(i, Value::Long(i as i64));
                    }
                });
            }
        });
        for i in 0..64 {
            assert_eq!(b.result_long(i), i as i64);
        }
    }
}
