//! T/O: basic timestamp-ordering concurrency control.
//!
//! Section II-C of the paper discusses why the classic timestamp-ordering
//! approach (Bernstein & Goodman) is *not* a viable drop-in for concurrent
//! stateful stream processing even though it is lock-free: each state keeps a
//! read timestamp (`rts`) and a write timestamp (`wts`), and a transaction is
//! admitted only while it is still "fresh" —
//!
//! * a **read** by transaction `ts` is rejected if the state has already been
//!   written by a transaction with a larger timestamp (`ts < wts`);
//! * a **write** by transaction `ts` is rejected if the state has already been
//!   read or written by a transaction with a larger timestamp
//!   (`ts < rts` or `ts < wts`).
//!
//! Under stream semantics every transaction *must* eventually commit with the
//! timestamp of its triggering event (feature **F3**), so neither of the two
//! classic remedies works: rejecting the transaction outright violates
//! exactly-once processing of the input event, and restarting it with a fresh,
//! larger timestamp violates the state access order (the toll would be
//! computed against a *future* road congestion status).  This module
//! implements the scheme faithfully so the paper's argument can be
//! demonstrated quantitatively (the `sec2c_order_unaware` harness): the
//! rejection rate grows with the number of executors and with key skew, and a
//! retry policy that re-stamps transactions produces final states that diverge
//! from the serial order.
//!
//! The scheme is deliberately **not** part of the paper's Figure 8 comparison;
//! it exists to reproduce the Section II-C analysis.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use tstream_state::{StateStore, TableId};
use tstream_stream::metrics::{Breakdown, Component, ComponentTimer};
use tstream_stream::operator::StateRef;

use crate::exec::undo_all;
use crate::outcome::TxnOutcome;
use crate::scheme::{EagerScheme, ExecEnv, TxnDescriptor};
use crate::transaction::StateTransaction;
use crate::Timestamp;

/// What the scheme does with a transaction that fails the freshness check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToPolicy {
    /// Reject the transaction (its event is reported as rejected on the
    /// output stream).  Exactly-once processing is violated.
    Reject,
    /// Restart the transaction with a fresh timestamp larger than every
    /// timestamp handed out so far.  The transaction commits, but the state
    /// access order of Definition 2 is violated.
    Restamp,
}

/// Why a T/O execution attempt failed.
#[derive(Debug)]
enum ToFailure {
    /// A freshness check failed: the transaction arrived "too late" for one
    /// of its states.  Retriable under [`ToPolicy::Restamp`].
    Stale,
    /// The application's own consistency check rejected an update; retrying
    /// cannot help.
    App(String),
}

/// Per-state timestamp bookkeeping.
#[derive(Debug, Default)]
struct TsEntry {
    /// Largest timestamp that has read this state.
    rts: u64,
    /// Largest timestamp that has written this state.
    wts: u64,
}

/// The basic timestamp-ordering scheme.
#[derive(Debug)]
pub struct ToScheme {
    policy: ToPolicy,
    /// `rts` / `wts` per state.  A sharded map would scale better, but the
    /// point of this scheme is the *algorithmic* abort behaviour, not raw
    /// speed, so a single mutex-protected map keeps it simple and obviously
    /// correct.
    timestamps: Mutex<HashMap<StateRef, TsEntry>>,
    /// Source of fresh timestamps for the [`ToPolicy::Restamp`] policy.
    restamp_clock: AtomicU64,
    /// Number of freshness-check failures observed (before any retry).
    conflicts: AtomicU64,
    /// Number of transactions that were ultimately rejected.
    rejections: AtomicU64,
    /// Number of transactions committed under a restamped (out-of-order)
    /// timestamp.
    order_violations: AtomicU64,
}

impl Default for ToScheme {
    fn default() -> Self {
        Self::new(ToPolicy::Reject)
    }
}

impl ToScheme {
    /// Creates the scheme with the given conflict policy.
    pub fn new(policy: ToPolicy) -> Self {
        ToScheme {
            policy,
            timestamps: Mutex::new(HashMap::new()),
            restamp_clock: AtomicU64::new(u64::MAX / 2),
            conflicts: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            order_violations: AtomicU64::new(0),
        }
    }

    /// Conflict policy in force.
    pub fn policy(&self) -> ToPolicy {
        self.policy
    }

    /// Number of freshness-check failures observed so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Number of transactions rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Number of transactions committed with a violated state-access order.
    pub fn order_violations(&self) -> u64 {
        self.order_violations.load(Ordering::Relaxed)
    }

    /// Attempt to run the transaction's operations under timestamp `ts`.
    ///
    /// Returns `Ok(())` if every operation passed the freshness checks and was
    /// applied, `Err(())` if a check failed (all applied writes are rolled
    /// back).
    fn try_execute(
        &self,
        txn: &StateTransaction,
        ts: Timestamp,
        store: &StateStore,
        breakdown: &mut Breakdown,
    ) -> Result<(), ToFailure> {
        let mut undo = Vec::with_capacity(txn.ops.len());
        for op in &txn.ops {
            // ---- Freshness check against the state's rts / wts (the "Sync"
            // cost of this scheme: the shared map is its central contention
            // point, just like the counters of LOCK/MVLK/PAT).
            let t = ComponentTimer::start();
            let admitted = {
                let mut map = self.timestamps.lock();
                let entry = map.entry(op.target).or_default();
                if op.is_write() {
                    if ts < entry.rts || ts < entry.wts {
                        false
                    } else {
                        entry.wts = ts;
                        true
                    }
                } else if ts < entry.wts {
                    false
                } else {
                    entry.rts = entry.rts.max(ts);
                    true
                }
            };
            t.stop(breakdown, Component::Sync);
            if !admitted {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                undo_all(store, &mut undo);
                return Err(ToFailure::Stale);
            }

            // ---- Apply the operation against the committed value.
            let t = ComponentTimer::start();
            let record = match store.record(TableId(op.target.table), op.target.key) {
                Ok(r) => r,
                Err(e) => {
                    t.stop(breakdown, Component::Others);
                    undo_all(store, &mut undo);
                    return Err(ToFailure::App(e.to_string()));
                }
            };
            let dep_value = op.dependency.and_then(|dep| {
                store
                    .record(TableId(dep.table), dep.key)
                    .ok()
                    .map(|r| r.read_committed())
            });
            let current = record.read_committed();
            match op.evaluate(&current, dep_value.as_ref()) {
                Ok(Some(new_value)) => {
                    let previous = record.write_committed(new_value);
                    undo.push(crate::exec::UndoEntry {
                        target: op.target,
                        slot: op.slot,
                        previous: Some(previous),
                        version_ts: None,
                    });
                }
                Ok(None) => {}
                Err(e) => {
                    // Consistency violation: the transaction aborts for
                    // application reasons, independent of the T/O checks.
                    t.stop(breakdown, Component::Useful);
                    undo_all(store, &mut undo);
                    return Err(ToFailure::App(e.to_string()));
                }
            }
            t.stop(breakdown, Component::Useful);
        }
        Ok(())
    }
}

impl EagerScheme for ToScheme {
    fn name(&self) -> &'static str {
        "T/O"
    }

    fn prepare_batch(&self, _batch: &[TxnDescriptor]) {
        // T/O needs no per-batch preparation: admission is decided per access
        // against the rts/wts bookkeeping.
    }

    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        _env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome {
        match self.try_execute(txn, txn.ts, store, breakdown) {
            Ok(()) => TxnOutcome::Committed,
            Err(ToFailure::App(reason)) => {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                txn.blotter.mark_aborted(reason.clone());
                TxnOutcome::aborted(reason)
            }
            Err(ToFailure::Stale) => match self.policy {
                ToPolicy::Reject => {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    txn.blotter.mark_aborted("T/O freshness check failed");
                    TxnOutcome::aborted("T/O freshness check failed")
                }
                ToPolicy::Restamp => {
                    // Retry with fresh, strictly larger timestamps until the
                    // transaction commits.  Each retry is an order violation:
                    // the transaction no longer executes at its event's
                    // logical position.
                    loop {
                        let fresh = self.restamp_clock.fetch_add(1, Ordering::Relaxed);
                        match self.try_execute(txn, fresh, store, breakdown) {
                            Ok(()) => {
                                self.order_violations.fetch_add(1, Ordering::Relaxed);
                                return TxnOutcome::Committed;
                            }
                            Err(ToFailure::App(reason)) => {
                                self.rejections.fetch_add(1, Ordering::Relaxed);
                                txn.blotter.mark_aborted(reason.clone());
                                return TxnOutcome::aborted(reason);
                            }
                            Err(ToFailure::Stale) => continue,
                        }
                    }
                }
            },
        }
    }

    fn end_batch(&self, _store: &StateStore) {}

    fn reset(&self) {
        self.timestamps.lock().clear();
        self.restamp_clock.store(u64::MAX / 2, Ordering::Relaxed);
        self.conflicts.store(0, Ordering::Relaxed);
        self.rejections.store(0, Ordering::Relaxed);
        self.order_violations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use std::sync::Arc;
    use tstream_state::{StateStore, TableBuilder, Value};

    fn store(keys: u64) -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    fn stamp_txn(ts: u64, key: u64) -> StateTransaction {
        let mut b = TxnBuilder::new(ts);
        b.write_value(0, key, Value::Long(ts as i64));
        b.build().0
    }

    fn read_txn(ts: u64, key: u64) -> StateTransaction {
        let mut b = TxnBuilder::new(ts);
        b.read(0, key);
        b.build().0
    }

    #[test]
    fn in_order_transactions_all_commit() {
        let store = store(4);
        let scheme = ToScheme::new(ToPolicy::Reject);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        for ts in 0..50u64 {
            let txn = stamp_txn(ts, ts % 4);
            assert!(scheme
                .execute(&txn, &store, &env, &mut breakdown)
                .is_committed());
        }
        assert_eq!(scheme.conflicts(), 0);
        assert_eq!(scheme.rejections(), 0);
    }

    #[test]
    fn late_read_is_rejected() {
        // The paper's example: txn_t1 = read(x), txn_t2 = write(x) with
        // t1 < t2, but txn_t2 happens to run first.  txn_t1's read then fails
        // the freshness check and can never commit at its own timestamp.
        let store = store(1);
        let scheme = ToScheme::new(ToPolicy::Reject);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();

        let write = stamp_txn(2, 0);
        assert!(scheme
            .execute(&write, &store, &env, &mut breakdown)
            .is_committed());

        let read = read_txn(1, 0);
        let outcome = scheme.execute(&read, &store, &env, &mut breakdown);
        assert!(outcome.is_aborted());
        assert!(read.blotter.is_aborted());
        assert_eq!(scheme.conflicts(), 1);
        assert_eq!(scheme.rejections(), 1);
    }

    #[test]
    fn late_write_is_rejected_after_newer_read() {
        let store = store(1);
        let scheme = ToScheme::new(ToPolicy::Reject);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();

        assert!(scheme
            .execute(&read_txn(5, 0), &store, &env, &mut breakdown)
            .is_committed());
        assert!(scheme
            .execute(&stamp_txn(3, 0), &store, &env, &mut breakdown)
            .is_aborted());
    }

    #[test]
    fn rejected_multi_write_rolls_back_applied_operations() {
        let store = store(2);
        let scheme = ToScheme::new(ToPolicy::Reject);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();

        // Poison key 1 with a newer write so the second operation fails.
        assert!(scheme
            .execute(&stamp_txn(10, 1), &store, &env, &mut breakdown)
            .is_committed());

        let mut b = TxnBuilder::new(4);
        b.write_value(0, 0, Value::Long(44));
        b.write_value(0, 1, Value::Long(44));
        let (txn, _) = b.build();
        assert!(scheme
            .execute(&txn, &store, &env, &mut breakdown)
            .is_aborted());
        // The first write (key 0) must have been rolled back.
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(0)
        );
    }

    #[test]
    fn restamp_policy_commits_but_violates_order() {
        let store = store(1);
        let scheme = ToScheme::new(ToPolicy::Restamp);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();

        // ts=2 writes 2, then ts=1 arrives late and writes 1.  Under a correct
        // schedule the final value is 2 (the larger timestamp wins); under
        // restamped T/O the late transaction is re-executed with a fresh
        // larger timestamp and overwrites it with 1.
        assert!(scheme
            .execute(&stamp_txn(2, 0), &store, &env, &mut breakdown)
            .is_committed());
        assert!(scheme
            .execute(&stamp_txn(1, 0), &store, &env, &mut breakdown)
            .is_committed());
        assert_eq!(scheme.order_violations(), 1);
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(1),
            "restamping produced a final state that differs from the correct schedule"
        );
    }

    #[test]
    fn concurrent_contention_produces_conflicts() {
        // Many threads write the same key with interleaved timestamps; the
        // arrival order inevitably differs from the timestamp order, so the
        // freshness checks must fire.
        let store = store(1);
        let scheme = Arc::new(ToScheme::new(ToPolicy::Reject));
        let threads = 8usize;
        let per_thread = 64u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                let scheme = scheme.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    for i in 0..per_thread {
                        let ts = i * threads as u64 + t as u64;
                        let txn = stamp_txn(ts, 0);
                        let _ = scheme.execute(&txn, &store, &env, &mut breakdown);
                    }
                });
            }
        });
        assert!(
            scheme.conflicts() > 0,
            "contended out-of-order arrivals must trip the freshness check"
        );
        // The committed value is always the largest admitted timestamp, i.e.
        // monotone, but some events were lost (rejected) along the way.
        assert_eq!(scheme.conflicts(), scheme.rejections());
    }

    #[test]
    fn reset_clears_all_bookkeeping() {
        let store = store(1);
        let scheme = ToScheme::new(ToPolicy::Reject);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        scheme.execute(&stamp_txn(2, 0), &store, &env, &mut breakdown);
        scheme.execute(&stamp_txn(1, 0), &store, &env, &mut breakdown);
        assert!(scheme.rejections() > 0);
        scheme.reset();
        assert_eq!(scheme.conflicts(), 0);
        assert_eq!(scheme.rejections(), 0);
        assert_eq!(scheme.order_violations(), 0);
        // After the reset an "old" timestamp is admitted again.
        assert!(scheme
            .execute(&stamp_txn(1, 0), &store, &env, &mut breakdown)
            .is_committed());
    }

    #[test]
    fn policy_accessor_reports_configuration() {
        assert_eq!(ToScheme::new(ToPolicy::Reject).policy(), ToPolicy::Reject);
        assert_eq!(ToScheme::default().policy(), ToPolicy::Reject);
        assert_eq!(ToScheme::new(ToPolicy::Restamp).policy(), ToPolicy::Restamp);
    }
}
