//! The No-Lock upper bound.
//!
//! All synchronisation is removed: transactions execute as soon as they
//! arrive, with no ordering guarantee whatsoever.  The paper uses this as the
//! performance upper bound in Figure 8 ("we also examine the system
//! performance when locks are completely removed from the LOCK scheme").
//! Results are *not* a correct state transaction schedule — that is the
//! point.

use tstream_state::StateStore;
use tstream_stream::metrics::Breakdown;

use crate::exec::{execute_transaction_body, ValueMode};
use crate::outcome::TxnOutcome;
use crate::scheme::{EagerScheme, ExecEnv, TxnDescriptor};
use crate::transaction::StateTransaction;

/// Scheme with every synchronisation mechanism removed.
#[derive(Debug, Default)]
pub struct NoLockScheme;

impl NoLockScheme {
    /// Creates the scheme.
    pub fn new() -> Self {
        NoLockScheme
    }
}

impl EagerScheme for NoLockScheme {
    fn name(&self) -> &'static str {
        "No-Lock"
    }

    fn prepare_batch(&self, _batch: &[TxnDescriptor]) {}

    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome {
        match execute_transaction_body(&txn.ops, store, env, ValueMode::Committed, breakdown) {
            Ok(()) => TxnOutcome::Committed,
            Err(e) => TxnOutcome::aborted(e.to_string()),
        }
    }

    fn end_batch(&self, _store: &StateStore) {}

    fn reset(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use std::sync::Arc;
    use tstream_state::{StateStore, TableBuilder, TableId, Value};

    fn store() -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..4u64).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    #[test]
    fn executes_transactions_without_blocking() {
        let store = store();
        let scheme = NoLockScheme::new();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        for ts in 0..100u64 {
            let mut b = TxnBuilder::new(ts);
            b.read_modify(0, ts % 4, None, |ctx| {
                Ok(Value::Long(ctx.current.as_long()? + 1))
            });
            let (txn, _) = b.build();
            assert!(scheme
                .execute(&txn, &store, &env, &mut breakdown)
                .is_committed());
        }
        // Single-threaded execution is still correct: each key incremented 25
        // times.
        for k in 0..4u64 {
            assert_eq!(
                store.record(TableId(0), k).unwrap().read_committed(),
                Value::Long(25)
            );
        }
        assert_eq!(scheme.name(), "No-Lock");
    }

    #[test]
    fn aborts_are_reported() {
        let store = store();
        let scheme = NoLockScheme::new();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        let mut b = TxnBuilder::new(0);
        b.read_modify(0, 0, None, |_| {
            Err(tstream_state::StateError::ConsistencyViolation("no".into()))
        });
        let (txn, blotter) = b.build();
        let outcome = scheme.execute(&txn, &store, &env, &mut breakdown);
        assert!(outcome.is_aborted());
        assert!(blotter.is_aborted());
    }
}
