//! PAT: the partition-based scheme (S-Store style).
//!
//! Application state is hash-partitioned (Section II-C.3).  Access order only
//! needs to be guarded *per partition*: each partition keeps a monotonically
//! increasing counter and a transaction may insert its locks into a partition
//! only when that partition's counter reaches the transaction's per-partition
//! sequence number.  Sequence numbers are assigned from the determined
//! read/write sets (feature F2) in timestamp order during batch preparation,
//! which is the centralized bookkeeping step the paper attributes to this
//! family of schemes.
//!
//! Single-partition transactions only synchronise on one counter; a
//! multi-partition transaction must pass the counter of *every* partition it
//! touches, which is why PAT "quickly devolves to LOCK with more
//! multi-partition transactions" (Section II-C, Figure 10).

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;
use tstream_state::lock::{LockMode, SeqGate};
use tstream_state::partition::Partitioner;
use tstream_state::{StateStore, TableId};
use tstream_stream::metrics::{Breakdown, Component, ComponentTimer};
use tstream_stream::operator::StateRef;

use crate::exec::{execute_transaction_body, ValueMode};
use crate::outcome::TxnOutcome;
use crate::scheme::{EagerScheme, ExecEnv, TxnDescriptor};
use crate::transaction::StateTransaction;
use crate::Timestamp;

/// Per-transaction admission plan: for every partition the transaction
/// touches, the sequence number it must wait for on that partition's counter.
#[derive(Debug, Clone, Default)]
struct PatPlan {
    /// `(partition, sequence)` pairs sorted by partition id.
    slots: Vec<(u32, u64)>,
}

/// The PAT scheme.
#[derive(Debug)]
pub struct PatScheme {
    partitioner: Partitioner,
    /// One admission counter per partition.
    gates: Vec<SeqGate>,
    /// Cumulative number of admissions assigned per partition (prepare-side).
    assigned: Mutex<Vec<u64>>,
    /// Plans for not-yet-executed transactions, keyed by timestamp.
    plans: Mutex<HashMap<Timestamp, PatPlan>>,
}

impl PatScheme {
    /// Creates a PAT scheme over `partitions` state partitions.
    pub fn new(partitions: u32) -> Self {
        let partitions = partitions.max(1);
        PatScheme {
            partitioner: Partitioner::new(partitions),
            gates: (0..partitions).map(|_| SeqGate::new(0)).collect(),
            assigned: Mutex::new(vec![0; partitions as usize]),
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitioner.partitions()
    }

    /// Partition of a state.
    pub fn partition_of(&self, state: StateRef) -> u32 {
        self.partitioner
            .partition_of_in_table(state.table, state.key)
    }

    /// Distinct partitions touched by a read/write set, ascending.
    fn partitions_of(&self, states: impl IntoIterator<Item = StateRef>) -> Vec<u32> {
        let mut parts: Vec<u32> = states.into_iter().map(|s| self.partition_of(s)).collect();
        parts.sort_unstable();
        parts.dedup();
        parts
    }

    /// Lock set grouped by partition.
    fn lock_set_by_partition(
        &self,
        txn: &StateTransaction,
    ) -> BTreeMap<u32, BTreeMap<StateRef, LockMode>> {
        let mut by_partition: BTreeMap<u32, BTreeMap<StateRef, LockMode>> = BTreeMap::new();
        for op in &txn.ops {
            let mode = if op.is_write() {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            let entry = by_partition
                .entry(self.partition_of(op.target))
                .or_default();
            entry
                .entry(op.target)
                .and_modify(|m| {
                    if mode == LockMode::Exclusive {
                        *m = LockMode::Exclusive;
                    }
                })
                .or_insert(mode);
            if let Some(dep) = op.dependency {
                by_partition
                    .entry(self.partition_of(dep))
                    .or_default()
                    .entry(dep)
                    .or_insert(LockMode::Shared);
            }
        }
        by_partition
    }
}

impl EagerScheme for PatScheme {
    fn name(&self) -> &'static str {
        "PAT"
    }

    fn prepare_batch(&self, batch: &[TxnDescriptor]) {
        // Assign per-partition sequence numbers in timestamp order.
        let mut descriptors: Vec<&TxnDescriptor> = batch.iter().collect();
        descriptors.sort_by_key(|d| d.ts);
        let mut assigned = self.assigned.lock();
        let mut plans = self.plans.lock();
        for d in descriptors {
            let touched: Vec<StateRef> = d.rw_set.iter().map(|(s, _)| *s).collect();
            let mut plan = PatPlan::default();
            for p in self.partitions_of(touched) {
                let seq = assigned[p as usize];
                assigned[p as usize] += 1;
                plan.slots.push((p, seq));
            }
            plans.insert(d.ts, plan);
        }
    }

    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome {
        let plan = self.plans.lock().remove(&txn.ts).unwrap_or_default();
        let lock_set = self.lock_set_by_partition(txn);

        // Pass each targeted partition's counter in ascending partition order,
        // inserting the partition's locks as soon as its counter admits us and
        // then advancing the counter so the next transaction can proceed.
        let mut locked: Vec<&tstream_state::Record> = Vec::new();
        for (partition, seq) in &plan.slots {
            let t = ComponentTimer::start();
            self.gates[*partition as usize].wait_exact(*seq);
            t.stop(breakdown, Component::Sync);

            let t = ComponentTimer::start();
            if let Some(states) = lock_set.get(partition) {
                for (state, mode) in states {
                    if let Ok(record) = store.record(TableId(state.table), state.key) {
                        record.lock().request(txn.ts, *mode);
                        locked.push(record);
                    }
                }
            }
            t.stop(breakdown, Component::Lock);

            self.gates[*partition as usize].advance();
        }

        // Block until every inserted lock is granted.
        let t = ComponentTimer::start();
        for record in &locked {
            record.lock().wait_granted(txn.ts);
        }
        t.stop(breakdown, Component::Sync);

        let result =
            match execute_transaction_body(&txn.ops, store, env, ValueMode::Committed, breakdown) {
                Ok(()) => TxnOutcome::Committed,
                Err(e) => TxnOutcome::aborted(e.to_string()),
            };

        let t = ComponentTimer::start();
        for record in &locked {
            record.lock().release(txn.ts);
        }
        t.stop(breakdown, Component::Lock);

        result
    }

    fn end_batch(&self, _store: &StateStore) {}

    fn reset(&self) {
        for gate in &self.gates {
            gate.reset(0);
        }
        self.assigned.lock().iter_mut().for_each(|v| *v = 0);
        self.plans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use std::sync::Arc;
    use tstream_state::{StateStore, TableBuilder, Value};
    use tstream_stream::operator::ReadWriteSet;

    fn store(keys: u64) -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    fn stamp_txn(ts: u64, keys: &[u64]) -> (StateTransaction, TxnDescriptor) {
        let mut b = TxnBuilder::new(ts);
        let mut set = ReadWriteSet::new();
        for &k in keys {
            b.write_value(0, k, Value::Long(ts as i64));
            set = set.write(StateRef::new(0, k));
        }
        (b.build().0, TxnDescriptor::unresolved(ts, set))
    }

    #[test]
    fn single_partition_transactions_commit_concurrently() {
        let store = store(64);
        let scheme = Arc::new(PatScheme::new(8));
        let txn_count = 256u64;

        // Prepare descriptors for the whole "batch".
        let mut txns = Vec::new();
        let mut descs = Vec::new();
        for ts in 0..txn_count {
            let (txn, d) = stamp_txn(ts, &[ts % 64]);
            txns.push(txn);
            descs.push(d);
        }
        scheme.prepare_batch(&descs);

        // Threads claim transactions in timestamp order (as the round-robin
        // shuffle of the engine guarantees); claiming out of order from a
        // small thread pool could otherwise stall on the admission counters.
        let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let txns = Arc::new(txns);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let scheme = scheme.clone();
                let txns = txns.clone();
                let next = next.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= txns.len() {
                            break;
                        }
                        assert!(scheme
                            .execute(&txns[i], &store, &env, &mut breakdown)
                            .is_committed());
                    }
                });
            }
        });
        // Every key was last written by the largest timestamp mapping to it.
        for k in 0..64u64 {
            let expected = (0..txn_count).filter(|ts| ts % 64 == k).max().unwrap() as i64;
            assert_eq!(
                store.record(TableId(0), k).unwrap().read_committed(),
                Value::Long(expected)
            );
        }
    }

    #[test]
    fn multi_partition_transactions_remain_correct() {
        let store = store(32);
        let scheme = Arc::new(PatScheme::new(4));
        let txn_count = 128u64;
        let mut txns = Vec::new();
        let mut descs = Vec::new();
        for ts in 0..txn_count {
            // Each transaction writes 4 keys spread over the key space, so
            // most transactions are multi-partition.
            let keys = [ts % 32, (ts + 7) % 32, (ts + 15) % 32, (ts + 23) % 32];
            let (txn, d) = stamp_txn(ts, &keys);
            txns.push(txn);
            descs.push(d);
        }
        scheme.prepare_batch(&descs);

        let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let txns = Arc::new(txns);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let scheme = scheme.clone();
                let txns = txns.clone();
                let next = next.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= txns.len() {
                            break;
                        }
                        assert!(scheme
                            .execute(&txns[i], &store, &env, &mut breakdown)
                            .is_committed());
                    }
                });
            }
        });

        // Replay serially to compute the expected final state.
        let expected = store_expected(txn_count);
        for k in 0..32u64 {
            assert_eq!(
                store.record(TableId(0), k).unwrap().read_committed(),
                Value::Long(expected[k as usize]),
                "key {k}"
            );
        }
    }

    fn store_expected(txn_count: u64) -> Vec<i64> {
        let mut vals = vec![0i64; 32];
        for ts in 0..txn_count {
            for k in [ts % 32, (ts + 7) % 32, (ts + 15) % 32, (ts + 23) % 32] {
                vals[k as usize] = ts as i64;
            }
        }
        vals
    }

    #[test]
    fn partition_mapping_is_stable() {
        let scheme = PatScheme::new(6);
        assert_eq!(scheme.partitions(), 6);
        let s = StateRef::new(1, 42);
        assert_eq!(scheme.partition_of(s), scheme.partition_of(s));
    }

    #[test]
    fn reset_clears_counters_and_plans() {
        let scheme = PatScheme::new(2);
        let (_, d) = stamp_txn(0, &[1]);
        scheme.prepare_batch(&[d]);
        assert!(!scheme.plans.lock().is_empty());
        scheme.reset();
        assert!(scheme.plans.lock().is_empty());
        assert_eq!(scheme.assigned.lock()[0], 0);
        assert_eq!(scheme.gates[0].current(), 0);
    }

    #[test]
    fn unprepared_transaction_still_executes() {
        // A transaction the scheme never saw in prepare_batch (empty plan)
        // must not deadlock — it simply skips partition admission.
        let store = store(4);
        let scheme = PatScheme::new(2);
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        let (txn, _) = stamp_txn(0, &[1]);
        assert!(scheme
            .execute(&txn, &store, &env, &mut breakdown)
            .is_committed());
    }
}
