//! Shared operation-execution helpers.
//!
//! All schemes ultimately perform the same physical work per operation —
//! resolve the target record through the table index, read the current (or
//! timestamp-visible) value, run the user function, apply the write — and
//! they all charge that work to the same breakdown components.  Centralising
//! it here keeps the scheme implementations focused on *synchronisation*,
//! which is what the paper compares.

use tstream_obs::clock;
use tstream_state::{StateError, StateResult, StateStore, TableId, Value};
use tstream_stream::metrics::{Breakdown, Component};
use tstream_stream::operator::StateRef;

use crate::operation::{Operation, INVALID_SLOT};
use crate::scheme::ExecEnv;
use crate::Timestamp;

/// How values are read and written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueMode {
    /// Single-version: read and overwrite the committed value directly
    /// (No-Lock, LOCK, PAT).
    Committed,
    /// Multi-version: reads pick the version visible at the operation's
    /// timestamp, writes install a new version; the newest version is folded
    /// into the committed value at the end of the batch (MVLK, and TStream's
    /// dependency handling).
    Versioned,
}

/// Undo information for one applied write, so an aborting transaction can
/// roll back the operations it already applied.
#[derive(Debug)]
pub struct UndoEntry {
    /// Which state was written.
    pub target: StateRef,
    /// Record slot of the written state ([`INVALID_SLOT`] when the write went
    /// through the keyed index), so rollback and serial replay can restore
    /// the value without another index lookup.
    pub slot: u32,
    /// Committed value before the write (only meaningful in
    /// [`ValueMode::Committed`]).
    pub previous: Option<Value>,
    /// Version timestamp to remove (only meaningful in
    /// [`ValueMode::Versioned`]).
    pub version_ts: Option<Timestamp>,
}

/// Execute a single operation.
///
/// On success, any applied write is appended to `undo`.  Index lookups are
/// charged to *Others*; the state access itself is charged to *Useful*, or to
/// *RMA* when the NUMA model classifies the target record as remote to the
/// executor.
pub fn execute_operation(
    op: &Operation,
    store: &StateStore,
    env: &ExecEnv,
    mode: ValueMode,
    breakdown: &mut Breakdown,
    undo: &mut Vec<UndoEntry>,
) -> StateResult<()> {
    // Resolve the target and dependency records.  Slot-resolved operations
    // go straight to the record slot — no shard routing, no index lookup,
    // and no timer to charge, because there is no index work left to
    // measure.  Unresolved operations pay the keyed lookup, charged to
    // *Others* as before.
    let resolved =
        op.slot != INVALID_SLOT && (op.dependency.is_none() || op.dep_slot != INVALID_SLOT);
    let (record, dep_record) = if resolved {
        (
            store.record_at(TableId(op.target.table), op.slot),
            op.dependency
                .map(|dep| store.record_at(TableId(dep.table), op.dep_slot)),
        )
    } else {
        let t_index = clock::now();
        let record = store.record(TableId(op.target.table), op.target.key)?;
        let dep_record = match op.dependency {
            Some(dep) => Some(store.record(TableId(dep.table), dep.key)?),
            None => None,
        };
        breakdown.charge(Component::Others, t_index.elapsed());
        (record, dep_record)
    };

    // The state access itself.
    let remote =
        env.is_remote(op.target.key) || op.dependency.is_some_and(|d| env.is_remote(d.key));
    let t_access = clock::now();
    if remote {
        env.remote_penalty();
    }
    let dep_value = dep_record.map(|r| match mode {
        ValueMode::Committed => r.read_committed(),
        ValueMode::Versioned => r.read_visible(op.ts),
    });
    let produced = match mode {
        // Evaluate against the committed value in place — no clone of the
        // current value just to read it.
        ValueMode::Committed => {
            record.with_committed(|current| op.evaluate(current, dep_value.as_ref()))
        }
        ValueMode::Versioned => {
            let current = record.read_visible(op.ts);
            op.evaluate(&current, dep_value.as_ref())
        }
    };
    let outcome = match produced {
        Ok(Some(new_value)) => {
            match mode {
                ValueMode::Committed => {
                    let previous = record.write_committed(new_value);
                    undo.push(UndoEntry {
                        target: op.target,
                        slot: op.slot,
                        previous: Some(previous),
                        version_ts: None,
                    });
                }
                ValueMode::Versioned => {
                    record.install_version(op.ts, new_value);
                    undo.push(UndoEntry {
                        target: op.target,
                        slot: op.slot,
                        previous: None,
                        version_ts: Some(op.ts),
                    });
                }
            }
            Ok(())
        }
        Ok(None) => Ok(()),
        Err(e) => Err(e),
    };
    let component = if remote {
        Component::Rma
    } else {
        Component::Useful
    };
    breakdown.charge(component, t_access.elapsed());
    outcome
}

/// Roll back previously applied writes, newest first.
pub fn undo_all(store: &StateStore, undo: &mut Vec<UndoEntry>) {
    while let Some(entry) = undo.pop() {
        let record = if entry.slot != INVALID_SLOT {
            Some(store.record_at(TableId(entry.target.table), entry.slot))
        } else {
            store
                .record(TableId(entry.target.table), entry.target.key)
                .ok()
        };
        if let Some(record) = record {
            if let Some(previous) = entry.previous {
                record.write_committed(previous);
            }
            if let Some(ts) = entry.version_ts {
                record.remove_version(ts);
            }
        }
    }
}

/// Convenience wrapper: execute every operation of a transaction in issue
/// order, rolling back on the first failure.
///
/// This is the body shared by the eager schemes once their synchronisation
/// has admitted the transaction.
pub fn execute_transaction_body(
    ops: &[Operation],
    store: &StateStore,
    env: &ExecEnv,
    mode: ValueMode,
    breakdown: &mut Breakdown,
) -> StateResult<()> {
    let mut undo = Vec::with_capacity(ops.len());
    for op in ops {
        if let Err(e) = execute_operation(op, store, env, mode, breakdown, &mut undo) {
            undo_all(store, &mut undo);
            op.blotter.mark_aborted(e.to_string());
            return Err(StateError::Aborted {
                timestamp: op.ts,
                reason: e.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use tstream_state::{StateStore, TableBuilder, Value};

    fn store() -> std::sync::Arc<StateStore> {
        let t = TableBuilder::new("accounts")
            .extend((0..10u64).map(|k| (k, Value::Long(100))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    #[test]
    fn committed_mode_reads_and_writes_in_place() {
        let store = store();
        let env = ExecEnv::single();
        let mut b = Breakdown::new();

        let mut txn = TxnBuilder::new(1);
        txn.read(0, 3);
        txn.read_modify(0, 3, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 5))
        });
        let (txn, blotter) = txn.build();
        execute_transaction_body(&txn.ops, &store, &env, ValueMode::Committed, &mut b).unwrap();

        assert_eq!(blotter.result_long(0), 100);
        assert_eq!(blotter.result_long(1), 105);
        assert_eq!(
            store.record(TableId(0), 3).unwrap().read_committed(),
            Value::Long(105)
        );
        assert!(b.useful > std::time::Duration::ZERO);
        assert!(b.others > std::time::Duration::ZERO);
    }

    #[test]
    fn versioned_mode_defers_commit_to_collapse() {
        let store = store();
        let env = ExecEnv::single();
        let mut b = Breakdown::new();

        let mut txn = TxnBuilder::new(5);
        txn.write_value(0, 2, Value::Long(999));
        let (txn, _) = txn.build();
        execute_transaction_body(&txn.ops, &store, &env, ValueMode::Versioned, &mut b).unwrap();

        let record = store.record(TableId(0), 2).unwrap();
        // The committed value is untouched until collapse.
        assert_eq!(record.read_committed(), Value::Long(100));
        // But readers at a later timestamp see the new version.
        assert_eq!(record.read_visible(6), Value::Long(999));
        // Readers logically before the write still see the base value.
        assert_eq!(record.read_visible(5), Value::Long(100));
        record.collapse_versions();
        assert_eq!(record.read_committed(), Value::Long(999));
    }

    #[test]
    fn failure_rolls_back_applied_writes() {
        let store = store();
        let env = ExecEnv::single();
        let mut b = Breakdown::new();

        let mut txn = TxnBuilder::new(2);
        // First write succeeds, second fails the consistency check.
        txn.read_modify(0, 1, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? - 10))
        });
        txn.read_modify(0, 4, None, |_ctx| {
            Err(StateError::ConsistencyViolation("boom".into()))
        });
        let (txn, blotter) = txn.build();
        let err = execute_transaction_body(&txn.ops, &store, &env, ValueMode::Committed, &mut b)
            .unwrap_err();
        assert!(matches!(err, StateError::Aborted { .. }));
        assert!(blotter.is_aborted());
        // The first write was rolled back.
        assert_eq!(
            store.record(TableId(0), 1).unwrap().read_committed(),
            Value::Long(100)
        );
    }

    #[test]
    fn missing_key_is_an_error() {
        let store = store();
        let env = ExecEnv::single();
        let mut b = Breakdown::new();
        let mut txn = TxnBuilder::new(0);
        txn.read(0, 999);
        let (txn, _) = txn.build();
        let mut undo = Vec::new();
        let err = execute_operation(
            &txn.ops[0],
            &store,
            &env,
            ValueMode::Committed,
            &mut b,
            &mut undo,
        )
        .unwrap_err();
        assert!(matches!(err, StateError::KeyNotFound { .. }));
    }

    #[test]
    fn dependency_value_is_passed_to_functions() {
        let store = store();
        store
            .record(TableId(0), 7)
            .unwrap()
            .write_committed(Value::Long(1));
        let env = ExecEnv::single();
        let mut b = Breakdown::new();
        let mut txn = TxnBuilder::new(3);
        // Write key 0 to (dependency key 7's value) * 2.
        txn.write_with(0, 0, Some(StateRef::new(0, 7)), |ctx| {
            Ok(Value::Long(ctx.dependency.unwrap().as_long()? * 2))
        });
        let (txn, _) = txn.build();
        execute_transaction_body(&txn.ops, &store, &env, ValueMode::Committed, &mut b).unwrap();
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(2)
        );
    }
}
