//! # tstream-txn
//!
//! The *state transaction* model of the paper (Definitions 1 and 2) plus the
//! baseline concurrency-control schemes TStream is compared against:
//!
//! * [`nolock::NoLockScheme`] — all synchronisation removed, the performance
//!   upper bound of Figure 8;
//! * [`lock_based::LockScheme`] — strict two-phase locking with a centralized
//!   *lockAhead* counter (Wang et al., Section II-C.1);
//! * [`mvlk::MvlkScheme`] — multi-version locking with per-state `lwm`
//!   watermarks (Section II-C.2);
//! * [`pat::PatScheme`] — partition-based ordering in the style of S-Store
//!   (Section II-C.3);
//! * [`to::ToScheme`] / [`occ::OccScheme`] — the classic order-unaware
//!   concurrency controls the paper argues are unsuitable for stream
//!   transactions (Section II-C discussion); used by the `sec2c` harness to
//!   quantify that argument, not by the Figure 8 comparison.
//!
//! It also defines the pieces every scheme (including TStream, implemented in
//! `tstream-core`) shares:
//!
//! * [`operation::Operation`] — a single decomposed state access (READ /
//!   WRITE / READ_MODIFY with optional user function and data dependency);
//! * [`transaction::StateTransaction`] / [`transaction::TxnBuilder`] — the set
//!   of operations triggered by one input event;
//! * [`blotter::EventBlotter`] — the per-event result carrier bridging state
//!   access and post-processing;
//! * [`app::Application`] — the three-step-procedure trait applications
//!   implement (features F1–F3);
//! * [`scheme::EagerScheme`] — the interface the engine drives baselines
//!   through.

#![warn(missing_docs)]

pub mod app;
pub mod blotter;
pub mod exec;
pub mod lock_based;
pub mod mvlk;
pub mod nolock;
pub mod occ;
pub mod operation;
pub mod outcome;
pub mod pat;
pub mod scheme;
pub mod to;
pub mod transaction;

pub use app::{Application, PostAction};
pub use blotter::{BlotterHandle, EventBlotter};
pub use operation::{AccessType, OpCtx, OpFunc, Operation, INVALID_SLOT};
pub use outcome::TxnOutcome;
pub use scheme::{EagerScheme, ExecEnv, NumaModel, TxnDescriptor};
pub use transaction::{StateTransaction, TxnBuilder};

/// Re-exported timestamp type (shared with the state and stream crates).
pub type Timestamp = tstream_state::Timestamp;
