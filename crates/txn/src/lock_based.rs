//! LOCK: strict two-phase locking with a centralized lockAhead counter.
//!
//! Re-implementation of the S2PL-based algorithm of Wang et al. as described
//! in Section II-C.1 of the paper:
//!
//! 1. a transaction compares its timestamp against a single, monotonically
//!    increasing counter (*lockAhead*) and may insert its locks only when the
//!    counter reaches its timestamp — this guarantees that locks are inserted
//!    in timestamp order and therefore granted in timestamp order for every
//!    conflict;
//! 2. as soon as the locks are *inserted* (not yet granted), the counter is
//!    advanced so the next transaction can insert its own locks;
//! 3. the transaction then blocks until each lock is granted, executes its
//!    operations, and releases everything (strict 2PL).
//!
//! The single global counter is exactly the centralized contention point the
//! paper blames for LOCK's poor scalability.

use std::collections::BTreeMap;

use tstream_state::lock::{LockMode, SeqGate};
use tstream_state::{StateStore, TableId};
use tstream_stream::metrics::{Breakdown, Component, ComponentTimer};
use tstream_stream::operator::StateRef;

use crate::exec::{execute_transaction_body, ValueMode};
use crate::outcome::TxnOutcome;
use crate::scheme::{EagerScheme, ExecEnv, TxnDescriptor};
use crate::transaction::StateTransaction;

/// The LOCK scheme.
#[derive(Debug)]
pub struct LockScheme {
    /// The lockAhead counter: equals the timestamp of the next transaction
    /// allowed to insert its locks.
    lock_ahead: SeqGate,
}

impl Default for LockScheme {
    fn default() -> Self {
        Self::new()
    }
}

impl LockScheme {
    /// Creates the scheme with the counter at timestamp 0.
    pub fn new() -> Self {
        LockScheme {
            lock_ahead: SeqGate::new(0),
        }
    }

    /// Current value of the lockAhead counter (test / debug aid).
    pub fn lock_ahead(&self) -> u64 {
        self.lock_ahead.current()
    }

    /// Distinct states a transaction must lock, with the strongest required
    /// mode (a write anywhere in the transaction upgrades the lock).
    fn lock_set(txn: &StateTransaction) -> BTreeMap<StateRef, LockMode> {
        let mut set: BTreeMap<StateRef, LockMode> = BTreeMap::new();
        for op in &txn.ops {
            let mode = if op.is_write() {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            set.entry(op.target)
                .and_modify(|m| {
                    if mode == LockMode::Exclusive {
                        *m = LockMode::Exclusive;
                    }
                })
                .or_insert(mode);
            if let Some(dep) = op.dependency {
                set.entry(dep).or_insert(LockMode::Shared);
            }
        }
        set
    }
}

impl EagerScheme for LockScheme {
    fn name(&self) -> &'static str {
        "LOCK"
    }

    fn prepare_batch(&self, _batch: &[TxnDescriptor]) {
        // LOCK needs no per-batch preparation: the single counter plus the
        // timestamps themselves fully determine the insertion order.
    }

    fn execute(
        &self,
        txn: &StateTransaction,
        store: &StateStore,
        env: &ExecEnv,
        breakdown: &mut Breakdown,
    ) -> TxnOutcome {
        let lock_set = Self::lock_set(txn);

        // Sync: wait until the lockAhead counter reaches our timestamp.
        let t = ComponentTimer::start();
        self.lock_ahead.wait_exact(txn.ts);
        t.stop(breakdown, Component::Sync);

        // Lock: insert all lock requests (not yet granted).
        let t = ComponentTimer::start();
        let mut locked: Vec<&tstream_state::Record> = Vec::with_capacity(lock_set.len());
        let mut lookup_failed = false;
        for (state, mode) in &lock_set {
            match store.record(TableId(state.table), state.key) {
                Ok(record) => {
                    record.lock().request(txn.ts, *mode);
                    locked.push(record);
                }
                Err(_) => {
                    lookup_failed = true;
                }
            }
        }
        t.stop(breakdown, Component::Lock);

        // Locks inserted: immediately allow the next transaction to proceed.
        self.lock_ahead.advance_to(txn.ts + 1);

        // Sync: block until every inserted lock is granted.
        let t = ComponentTimer::start();
        for record in &locked {
            record.lock().wait_granted(txn.ts);
        }
        t.stop(breakdown, Component::Sync);

        // Execute the operations under the held locks.
        let result = if lookup_failed {
            txn.blotter.mark_aborted("state lookup failed");
            TxnOutcome::aborted("state lookup failed")
        } else {
            match execute_transaction_body(&txn.ops, store, env, ValueMode::Committed, breakdown) {
                Ok(()) => TxnOutcome::Committed,
                Err(e) => TxnOutcome::aborted(e.to_string()),
            }
        };

        // Strict 2PL: release everything at the end.
        let t = ComponentTimer::start();
        for record in &locked {
            record.lock().release(txn.ts);
        }
        t.stop(breakdown, Component::Lock);

        result
    }

    fn end_batch(&self, _store: &StateStore) {}

    fn reset(&self) {
        self.lock_ahead.reset(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxnBuilder;
    use std::sync::Arc;
    use tstream_state::{StateStore, TableBuilder, Value};
    use tstream_stream::executor::{ExecutorId, ExecutorLayout};
    use tstream_stream::operator::ReadWriteSet;

    fn store(keys: u64) -> Arc<StateStore> {
        let t = TableBuilder::new("t")
            .extend((0..keys).map(|k| (k, Value::Long(0))))
            .build()
            .unwrap();
        StateStore::new(vec![t]).unwrap()
    }

    fn increment_txn(ts: u64, key: u64) -> StateTransaction {
        let mut b = TxnBuilder::new(ts);
        b.read_modify(0, key, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
        b.build().0
    }

    /// Transaction that overwrites a key with its own timestamp; under a
    /// correct schedule the final value equals the largest timestamp.
    fn stamp_txn(ts: u64, key: u64) -> StateTransaction {
        let mut b = TxnBuilder::new(ts);
        b.write_value(0, key, Value::Long(ts as i64));
        b.build().0
    }

    #[test]
    fn concurrent_increments_are_all_applied() {
        let store = store(4);
        let scheme = Arc::new(LockScheme::new());
        let txn_count = 200u64;
        let threads = 4;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                let scheme = scheme.clone();
                s.spawn(move || {
                    let env = ExecEnv {
                        executor: ExecutorId(t as usize),
                        layout: ExecutorLayout::new(threads as usize, 10),
                        numa: crate::scheme::NumaModel::disabled(),
                    };
                    let mut breakdown = Breakdown::new();
                    for ts in (t..txn_count).step_by(threads as usize) {
                        let txn = increment_txn(ts, ts % 4);
                        assert!(scheme
                            .execute(&txn, &store, &env, &mut breakdown)
                            .is_committed());
                    }
                });
            }
        });
        let total: i64 = (0..4u64)
            .map(|k| {
                store
                    .record(TableId(0), k)
                    .unwrap()
                    .read_committed()
                    .as_long()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, txn_count as i64);
        assert_eq!(scheme.lock_ahead(), txn_count);
    }

    #[test]
    fn conflicting_writes_finish_in_timestamp_order() {
        // Every transaction writes its own timestamp to the same key from
        // many threads; the committed result must be the largest timestamp,
        // which only happens if conflicting writes are ordered by timestamp.
        let store = store(1);
        let scheme = Arc::new(LockScheme::new());
        let txn_count = 128u64;
        let threads = 8usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = store.clone();
                let scheme = scheme.clone();
                s.spawn(move || {
                    let env = ExecEnv::single();
                    let mut breakdown = Breakdown::new();
                    for ts in (t as u64..txn_count).step_by(threads) {
                        let txn = stamp_txn(ts, 0);
                        scheme.execute(&txn, &store, &env, &mut breakdown);
                    }
                });
            }
        });
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(txn_count as i64 - 1)
        );
    }

    #[test]
    fn breakdown_records_sync_and_lock_time() {
        let store = store(1);
        let scheme = LockScheme::new();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        let txn = increment_txn(0, 0);
        scheme.execute(&txn, &store, &env, &mut breakdown);
        assert!(breakdown.total() > std::time::Duration::ZERO);
        assert!(breakdown.useful > std::time::Duration::ZERO);
    }

    #[test]
    fn reset_rewinds_the_counter() {
        let store = store(1);
        let scheme = LockScheme::new();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();
        scheme.execute(&increment_txn(0, 0), &store, &env, &mut breakdown);
        assert_eq!(scheme.lock_ahead(), 1);
        scheme.reset();
        assert_eq!(scheme.lock_ahead(), 0);
        // prepare_batch is a no-op but must be callable.
        scheme.prepare_batch(&[TxnDescriptor::unresolved(0, ReadWriteSet::new())]);
    }

    #[test]
    fn aborted_transaction_releases_its_locks() {
        let store = store(2);
        let scheme = LockScheme::new();
        let env = ExecEnv::single();
        let mut breakdown = Breakdown::new();

        let mut b = TxnBuilder::new(0);
        b.read_modify(0, 0, None, |ctx| {
            Ok(Value::Long(ctx.current.as_long()? + 1))
        });
        b.read_modify(0, 1, None, |_| {
            Err(tstream_state::StateError::ConsistencyViolation(
                "bad".into(),
            ))
        });
        let (txn, _) = b.build();
        assert!(scheme
            .execute(&txn, &store, &env, &mut breakdown)
            .is_aborted());
        // The applied increment was rolled back.
        assert_eq!(
            store.record(TableId(0), 0).unwrap().read_committed(),
            Value::Long(0)
        );
        // Locks were released: the next transaction can proceed.
        let txn2 = increment_txn(1, 0);
        assert!(scheme
            .execute(&txn2, &store, &env, &mut breakdown)
            .is_committed());
    }
}
