//! Micro-bench of the dual-mode switching machinery: the cost of one
//! barrier-synchronised mode switch across N threads, and of recycling chain
//! pools — the overhead the punctuation interval amortises (Section IV-E,
//! "Transaction Batching").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tstream_core::{ChainPlacement, ChainPoolSet};
use tstream_stream::barrier::CyclicBarrier;
use tstream_stream::executor::ExecutorLayout;
use tstream_stream::operator::StateRef;

fn bench_barrier_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("mode_switch_barrier_round");
    group.sample_size(20);
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    // One full dual-mode switch = two barrier generations.
                    let barrier = Arc::new(CyclicBarrier::new(threads));
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let barrier = barrier.clone();
                            s.spawn(move || {
                                for _ in 0..100 {
                                    barrier.wait();
                                    barrier.wait();
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

fn bench_pool_recycling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_pool_prepare_and_clear");
    for &chains in &[500usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(chains),
            &chains,
            |b, &chains| {
                let pools =
                    ChainPoolSet::new(ChainPlacement::SharedNothing, ExecutorLayout::new(8, 10), 8);
                b.iter(|| {
                    for k in 0..chains as u64 {
                        pools.chain_for(StateRef::new(0, k));
                    }
                    for pool in pools.pools() {
                        pool.prepare_tasks();
                    }
                    pools.clear_all();
                    pools.total_chains()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_barrier_round, bench_pool_recycling);
criterion_main!(benches);
