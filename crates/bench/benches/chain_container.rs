//! Ablation bench: the operation-chain container.
//!
//! The paper picks a concurrent skip list for operation chains
//! (Section IV-C.1); this bench compares single-threaded and concurrent
//! insertion plus ordered scans against the obvious alternatives: a
//! mutex-protected `BTreeMap` and a mutex-protected `Vec` that is sorted once
//! before scanning.

use std::collections::BTreeMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use tstream_skiplist::ConcurrentSkipList;

const SIZES: [usize; 2] = [512, 4_096];
const THREADS: usize = 8;

/// Keys arrive roughly out of order, as they do when multiple executors
/// decompose interleaved timestamps.
fn shuffled_keys(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i * 2_654_435_761) % n as u64)
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_insert_single_thread");
    for &n in &SIZES {
        let keys = shuffled_keys(n);
        group.bench_with_input(BenchmarkId::new("skiplist", n), &keys, |b, keys| {
            b.iter(|| {
                let list = ConcurrentSkipList::new();
                for &k in keys {
                    list.insert(k, k);
                }
                list.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("mutex_btreemap", n), &keys, |b, keys| {
            b.iter(|| {
                let map = Mutex::new(BTreeMap::new());
                for &k in keys {
                    map.lock().insert(k, k);
                }
                let len = map.lock().len();
                len
            })
        });
        group.bench_with_input(BenchmarkId::new("mutex_vec_sort", n), &keys, |b, keys| {
            b.iter(|| {
                let vec = Mutex::new(Vec::new());
                for &k in keys {
                    vec.lock().push((k, k));
                }
                let mut v = vec.into_inner();
                v.sort_unstable();
                v.len()
            })
        });
    }
    group.finish();
}

fn bench_concurrent_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_insert_8_threads");
    group.sample_size(20);
    for &n in &SIZES {
        group.bench_with_input(BenchmarkId::new("skiplist", n), &n, |b, &n| {
            b.iter(|| {
                let list = Arc::new(ConcurrentSkipList::new());
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let list = list.clone();
                        s.spawn(move || {
                            for i in (t..n).step_by(THREADS) {
                                list.insert(i as u64, i as u64);
                            }
                        });
                    }
                });
                list.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("mutex_btreemap", n), &n, |b, &n| {
            b.iter(|| {
                let map = Arc::new(Mutex::new(BTreeMap::new()));
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let map = map.clone();
                        s.spawn(move || {
                            for i in (t..n).step_by(THREADS) {
                                map.lock().insert(i as u64, i as u64);
                            }
                        });
                    }
                });
                let len = map.lock().len();
                len
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_ordered_scan");
    for &n in &SIZES {
        let list = ConcurrentSkipList::new();
        let map = Mutex::new(BTreeMap::new());
        for k in shuffled_keys(n) {
            list.insert(k, k);
            map.lock().insert(k, k);
        }
        group.bench_with_input(BenchmarkId::new("skiplist", n), &list, |b, list| {
            b.iter(|| list.iter().map(|(_, v)| *v).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("mutex_btreemap", n), &map, |b, map| {
            b.iter(|| map.lock().values().copied().sum::<u64>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_concurrent_insert, bench_scan);
criterion_main!(benches);
