//! Micro-benchmarks of the slot-resolved event path: routing, chain
//! construction, and temp-version access.
//!
//! Routing resolves every `StateRef` of a transaction's determined
//! read/write set to its record slot once, on the ingestion thread
//! (overlapped with execution of the previous batch); execution then does a
//! direct slot access per operation instead of a sharded, `RwLock`-guarded
//! hash lookup.  These benches isolate the three costs that trade: the
//! one-time resolution, the per-op execution under each addressing mode,
//! and the chain/temp-version machinery the resolved slots feed.
//!
//! Run `cargo bench -p tstream-bench --bench event_path`; pass `--quick`
//! (as CI does) for a smaller, smoke-test-sized input set.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tstream_apps::gs::{self, RECORD_TABLE};
use tstream_apps::workload::WorkloadSpec;
use tstream_core::ChainPool;
use tstream_state::{Record, TableId, Value};
use tstream_txn::{StateTransaction, TxnBuilder, INVALID_SLOT};

/// `--quick` shrinks every input so the whole binary finishes in seconds;
/// CI runs this as a smoke test, real measurements use the full sizes.
fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn scaled(full: usize) -> usize {
    if quick() {
        (full / 5).max(64)
    } else {
        full
    }
}

/// Deterministic read-only transactions of `txn_len` distinct keys each,
/// striding over the key space like a mildly skewed workload would.
fn read_txns(events: usize, keys: u64, txn_len: u64) -> Vec<StateTransaction> {
    (0..events)
        .map(|ts| {
            let mut txn = TxnBuilder::new(ts as u64);
            for i in 0..txn_len {
                txn.read(RECORD_TABLE, (ts as u64 * 7 + i * 131) % keys);
            }
            txn.build().0
        })
        .collect()
}

fn bench_routing(c: &mut Criterion) {
    let keys = scaled(10_000) as u64;
    let events = scaled(1_000);
    let store = gs::build_store(&WorkloadSpec::default().keys(keys).seed(0xB0));
    let table = TableId(RECORD_TABLE);

    let mut group = c.benchmark_group("routing");

    // The one-time routing cost: resolve the whole read/write set of every
    // transaction against the store index.
    group.bench_function("resolve_slots_once", |b| {
        let mut txns = read_txns(events, keys, 10);
        b.iter(|| {
            for txn in &mut txns {
                txn.resolve_slots(|s| {
                    store
                        .try_slot_of(TableId(s.table), s.key)
                        .unwrap_or(INVALID_SLOT)
                });
            }
        })
    });

    // Per-op execution, unresolved: every access pays the sharded hash
    // index lookup.
    group.bench_function("execute_keyed_lookup", |b| {
        let txns = read_txns(events, keys, 10);
        b.iter(|| {
            let mut acc = 0usize;
            for txn in &txns {
                for op in &txn.ops {
                    let record = store.record(table, op.target.key).expect("known key");
                    acc += record.with_committed(|v| v.approx_size());
                }
            }
            black_box(acc)
        })
    });

    // Per-op execution, slot-resolved: direct slot access.
    group.bench_function("execute_slot_resolved", |b| {
        let mut txns = read_txns(events, keys, 10);
        for txn in &mut txns {
            txn.resolve_slots(|s| {
                store
                    .try_slot_of(TableId(s.table), s.key)
                    .unwrap_or(INVALID_SLOT)
            });
        }
        b.iter(|| {
            let mut acc = 0usize;
            for txn in &txns {
                for op in &txn.ops {
                    let record = store.record_at(table, op.slot);
                    acc += record.with_committed(|v| v.approx_size());
                }
            }
            black_box(acc)
        })
    });

    group.finish();
}

fn bench_chain_construction(c: &mut Criterion) {
    let keys = scaled(2_048) as u64;
    let events = scaled(1_000);
    let txns = read_txns(events, keys, 10);

    let mut group = c.benchmark_group("chain_construction");
    group.sample_size(10);

    // Steady state: chains recycled across batches through the pool's free
    // list, inserts hitting the in-timestamp-order append fast path.
    group.bench_function("recycled_pool", |b| {
        let pool = ChainPool::new();
        b.iter(|| {
            for txn in &txns {
                for op in &txn.ops {
                    pool.chain_for(op.target).insert(op.clone());
                }
            }
            pool.clear();
            black_box(pool.free_chains())
        })
    });

    // The alternative the recycling avoids: a fresh pool (and fresh chain
    // allocations) for every batch.
    group.bench_function("fresh_pool_per_batch", |b| {
        b.iter(|| {
            let pool = ChainPool::new();
            for txn in &txns {
                for op in &txn.ops {
                    pool.chain_for(op.target).insert(op.clone());
                }
            }
            black_box(pool.free_chains())
        })
    });

    group.finish();
}

fn bench_temp_version_access(c: &mut Criterion) {
    let n = scaled(1_024) as u64;
    let mut group = c.benchmark_group("temp_version_access");

    // The depended-upon chain life cycle: install a temp version per write,
    // serve timestamp-consistent reads, collapse into the committed value
    // at the end of the batch.
    group.bench_function("install_read_collapse", |b| {
        let record = Record::new(Value::Long(0));
        b.iter(|| {
            for ts in 0..n {
                record.install_version(ts, Value::Long(ts as i64));
            }
            let mut acc = 0i64;
            for ts in 0..n {
                acc += record.read_visible(ts + 1).as_long().unwrap_or(0);
            }
            record.collapse_versions();
            black_box(acc)
        })
    });

    // Committed reads on the conflict-free fast path: cloning the value out
    // versus borrowing it under the read guard.
    let payload = Record::new(Value::Str("x".repeat(32).into()));
    group.bench_function("read_committed_clone", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..n {
                acc += payload.read_committed().approx_size();
            }
            black_box(acc)
        })
    });
    group.bench_function("with_committed_borrow", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..n {
                acc += payload.with_committed(|v| v.approx_size());
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_routing,
    bench_chain_construction,
    bench_temp_version_access
);
criterion_main!(benches);
