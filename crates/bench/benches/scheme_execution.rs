//! Micro-bench of the per-transaction execution path of every scheme on a
//! small GS workload with four executors, measuring the full engine loop
//! (events/iteration is fixed, so lower time = higher throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tstream_apps::runner::{run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_core::EngineConfig;

const EVENTS: usize = 4_000;
const CORES: usize = 4;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_gs_4cores_4k_events");
    group.sample_size(10);
    for scheme in SchemeKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let spec = WorkloadSpec::default()
                        .events(EVENTS)
                        .partitions(CORES as u32);
                    let engine = EngineConfig::with_executors(CORES).punctuation(500);
                    let mut options = RunOptions::new(spec, engine);
                    options.pat_partitions = CORES as u32;
                    run_benchmark(AppKind::Gs, scheme, &options).committed
                })
            },
        );
    }
    group.finish();
}

fn bench_apps_under_tstream(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_tstream_4cores_4k_events");
    group.sample_size(10);
    for app in AppKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(app.label()), &app, |b, &app| {
            b.iter(|| {
                let spec = WorkloadSpec::default()
                    .events(EVENTS)
                    .partitions(CORES as u32);
                let engine = EngineConfig::with_executors(CORES).punctuation(500);
                let options = RunOptions::new(spec, engine);
                run_benchmark(app, SchemeKind::TStream, &options).committed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_apps_under_tstream);
criterion_main!(benches);
