//! `cargo bench` entry point that exercises a *quick* variant of every
//! paper experiment, so the full benchmark harness is covered by the default
//! bench run.  The detailed sweeps live in the `fig*` binaries
//! (`cargo run --release -p tstream-bench --bin fig08_throughput`).

use criterion::{criterion_group, criterion_main, Criterion};
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, run_point, HarnessConfig};

fn quick_figures(c: &mut Criterion) {
    let cfg = HarnessConfig::new(true);
    let cores = cfg.max_cores.min(8);

    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);

    // Figure 8 (headline): every app under PAT and TStream at `cores`.
    for app in AppKind::ALL {
        for scheme in [SchemeKind::Pat, SchemeKind::TStream] {
            let id = format!("fig08_{}_{}", app.label(), scheme.label());
            group.bench_function(&id, |b| {
                b.iter(|| {
                    run_point(app, scheme, cores, events_for(app, cores, true), 500).committed
                })
            });
        }
    }

    // Figure 12: TStream at two punctuation intervals on TP.
    for interval in [100usize, 1000] {
        let id = format!("fig12_TP_interval_{interval}");
        group.bench_function(&id, |b| {
            b.iter(|| {
                run_point(
                    AppKind::Tp,
                    SchemeKind::TStream,
                    cores,
                    events_for(AppKind::Tp, cores, true),
                    interval,
                )
                .committed
            })
        });
    }

    // Section II-C: the order-unaware controls on GS (small point each, so the
    // default bench run also exercises the T/O and OCC code paths).
    for scheme in SchemeKind::ORDER_UNAWARE {
        let id = format!("sec2c_GS_{}", scheme.label().replace('/', ""));
        group.bench_function(&id, |b| {
            b.iter(|| run_point(AppKind::Gs, scheme, cores, 2_000, 500).events)
        });
    }

    // Figure 2 / Section II-A: one quick run of the conventional TP pipeline.
    group.bench_function("fig02_conventional_TP", |b| {
        let spec = tstream_apps::workload::WorkloadSpec::default().events(5_000);
        let events = tstream_apps::tp::generate(&spec);
        b.iter(|| {
            tstream_apps::conventional::run_conventional(
                &events,
                tstream_apps::conventional::ConventionalConfig {
                    executors_per_operator: cores.max(2) / 2,
                    buffer_limit: 128,
                    channel_capacity: 1_024,
                },
            )
            .tolls_emitted
        })
    });

    group.finish();
}

criterion_group!(benches, quick_figures);
criterion_main!(benches);
