//! Ablation bench: chain-level round-based dependency resolution vs the
//! fine-grained watermark scheduler, on the dependency-heavy SL workload and
//! on the dependency-free GS workload (DESIGN.md, ablation #2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tstream_apps::runner::{run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_core::{DependencyResolution, EngineConfig};

const EVENTS: usize = 4_000;
const CORES: usize = 4;

fn bench_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_resolution");
    group.sample_size(10);
    for app in [AppKind::Sl, AppKind::Gs] {
        for resolution in [
            DependencyResolution::FineGrained,
            DependencyResolution::Rounds,
        ] {
            let label = format!("{}_{}", app.label(), resolution.label());
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(app, resolution),
                |b, &(app, resolution)| {
                    b.iter(|| {
                        let spec = WorkloadSpec::default()
                            .events(EVENTS)
                            .partitions(CORES as u32);
                        let engine = EngineConfig::with_executors(CORES)
                            .punctuation(500)
                            .resolution(resolution);
                        let options = RunOptions::new(spec, engine);
                        run_benchmark(app, SchemeKind::TStream, &options).committed
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
