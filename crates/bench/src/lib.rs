//! # tstream-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the paper's
//! evaluation (Section VI), plus Criterion micro-benchmarks of the core data
//! structures.
//!
//! Each figure has a dedicated binary under `src/bin/` that prints the same
//! rows/series the paper reports, e.g.:
//!
//! ```text
//! cargo run --release -p tstream-bench --bin fig08_throughput
//! cargo run --release -p tstream-bench --bin fig12_punctuation -- --quick
//! ```
//!
//! Pass `--quick` to any harness to run a reduced sweep (fewer events, fewer
//! sweep points); the `figures_quick` Criterion-style bench target runs the
//! quick variants of the headline figures so `cargo bench` touches every
//! experiment.
//!
//! The absolute numbers differ from the paper (different machine, Rust
//! instead of the JVM, modelled NUMA) — see `EXPERIMENTS.md` for the
//! paper-vs-measured comparison; the *shape* (which scheme wins, by roughly
//! what factor, where the crossovers are) is what these harnesses reproduce.

#![warn(missing_docs)]

use std::time::Duration;

use tstream_apps::runner::{run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_core::{EngineConfig, RunReport};
use tstream_txn::NumaModel;

/// Common command-line handling and sizing for the figure harnesses.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Reduced sweep for CI / `cargo bench`.
    pub quick: bool,
    /// Maximum number of executors the machine supports for sweeps.
    pub max_cores: usize,
}

impl HarnessConfig {
    /// Parse `--quick` from the process arguments and detect the core count.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Self::new(quick)
    }

    /// Construct explicitly (used by the `figures_quick` bench target).
    pub fn new(quick: bool) -> Self {
        let available = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(8);
        HarnessConfig {
            quick,
            max_cores: available.min(24),
        }
    }

    /// Events per run for a given sweep size.
    pub fn events(&self, full: usize) -> usize {
        if self.quick {
            (full / 10).max(2_000)
        } else {
            full
        }
    }

    /// Core counts swept by the scalability figures (the paper uses
    /// 1, 5, 10, ..., 40; we clamp to the host).
    pub fn core_sweep(&self) -> Vec<usize> {
        let mut points = vec![1usize, 2, 4, 8, 12, 16, 20, 24];
        points.retain(|&c| c <= self.max_cores);
        if self.quick {
            points.retain(|&c| c == 1 || c == 4 || c == self.max_cores.min(8));
        }
        if points.is_empty() {
            points.push(1);
        }
        points
    }
}

/// Default workload sizing for one (app, cores) benchmark point: enough
/// events to keep every executor busy for a meaningful time without making
/// full sweeps take hours.
pub fn events_for(app: AppKind, cores: usize, quick: bool) -> usize {
    let per_core = match app {
        AppKind::Gs => 6_000,
        AppKind::Sl => 8_000,
        AppKind::Ob => 6_000,
        AppKind::Tp => 12_000,
    };
    let scaled = per_core * cores.max(1);
    if quick {
        (scaled / 10).max(2_000)
    } else {
        scaled
    }
}

/// Run one benchmark point with the paper's default configuration
/// (punctuation 500, shared-nothing, Zipf skew per Section VI-B).
pub fn run_point(
    app: AppKind,
    scheme: SchemeKind,
    cores: usize,
    events: usize,
    punctuation: usize,
) -> RunReport {
    let spec = WorkloadSpec::default()
        .events(events)
        .partitions(cores.max(1) as u32);
    let engine = EngineConfig::with_executors(cores)
        .punctuation(punctuation)
        .numa(NumaModel::classify_only());
    let mut options = RunOptions::new(spec, engine);
    options.pat_partitions = cores.max(1) as u32;
    run_benchmark(app, scheme, &options)
}

/// Format a duration in milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Percentage formatting helper for breakdown rows.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_config_scales_down_in_quick_mode() {
        let quick = HarnessConfig::new(true);
        let full = HarnessConfig::new(false);
        assert!(quick.events(100_000) < 100_000);
        assert!(quick.core_sweep().len() <= full.core_sweep().len());
        assert!(full.core_sweep().contains(&1));
    }

    #[test]
    fn run_point_produces_a_report() {
        let report = run_point(AppKind::Gs, SchemeKind::TStream, 2, 1_000, 250);
        assert_eq!(report.events, 1_000);
        assert!(report.throughput_keps() > 0.0);
    }

    #[test]
    fn event_sizing_grows_with_cores() {
        assert!(events_for(AppKind::Tp, 8, false) > events_for(AppKind::Tp, 1, false));
        assert!(events_for(AppKind::Gs, 4, true) < events_for(AppKind::Gs, 4, false));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.5), "50.0%");
        assert!((ms(Duration::from_millis(3)) - 3.0).abs() < 1e-9);
    }
}
