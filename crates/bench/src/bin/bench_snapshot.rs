//! Perf-trajectory snapshot: run the Figure-8 style throughput sweep across
//! all four applications and write the results as machine-readable JSON
//! (`BENCH_engine.json` by default), so the repository carries a perf
//! baseline that later PRs can diff against.
//!
//! Besides the throughput sweep, the snapshot records the **durability
//! tax**: for each app, one TStream run through a durable (write-ahead
//! logged) session — checkpoints written, WAL bytes appended, throughput —
//! plus the time a cold recovery (`SessionBuilder::recover`) needs to
//! restore the checkpoint and replay the surviving segments.  It also
//! records **concurrency rows**: 2 and 4 sessions multiplexed over one
//! engine (one app per session), with their aggregate throughput, and an
//! **observability section**: interleaved best-of-N runs with the metrics
//! hub on (the default) vs `ObsConfig::disabled()`, pinning what the
//! always-on instrumentation costs (`bench_guard.sh` caps the mean at 5%).
//!
//! ```text
//! cargo run --release -p tstream-bench --bin bench_snapshot -- --quick
//! cargo run --release -p tstream-bench --bin bench_snapshot -- --quick --out BENCH_engine.json
//! ```

use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use std::path::Path;
use std::sync::Arc;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{
    gs, ob, run_benchmark, run_benchmark_concurrent, run_benchmark_durable, sl, tp, AppKind,
    RunOptions, SchemeKind,
};
use tstream_bench::{events_for, run_point, HarnessConfig};
use tstream_core::{Engine, EngineConfig, FsyncPolicy, ObsConfig, Scheme, WalPayload};
use tstream_replica::{ChannelTransport, Shipper};
use tstream_state::StateStore;
use tstream_txn::Application;

struct Point {
    app: &'static str,
    scheme: &'static str,
    cores: usize,
    events: u64,
    committed: u64,
    rejected: u64,
    keps: f64,
    p50_ms: f64,
    p99_ms: f64,
    compute_share: f64,
}

/// Per-stage wall-time split of a single-core TStream run — where the
/// non-compute time goes.  `compute_share` here is the same figure as the
/// matching throughput point's; the stage columns explain its denominator.
struct BreakdownPoint {
    app: &'static str,
    compute_ms: f64,
    state_access_ms: f64,
    useful_ms: f64,
    sync_ms: f64,
    lock_ms: f64,
    rma_ms: f64,
    others_ms: f64,
    compute_share: f64,
}

struct ConcurrencyPoint {
    sessions: usize,
    apps: String,
    events: u64,
    aggregate_keps: f64,
}

/// Cost of compiled-in instrumentation: the same run with the metrics hub
/// and flight recorder on (the default) and with `ObsConfig::disabled()`.
struct ObservabilityPoint {
    app: &'static str,
    instrumented_keps: f64,
    disabled_keps: f64,
    /// Throughput lost to instrumentation, clamped at zero (on noisy hosts
    /// the instrumented best-of-N regularly beats the disabled one).
    overhead: f64,
}

/// Cost of hot-standby shipping on the primary's ingest path: the same
/// durable run with a [`Shipper`] attached (segments read back and enqueued
/// on an in-process transport) and without one.
struct ReplicationPoint {
    app: &'static str,
    shipping_keps: f64,
    baseline_keps: f64,
    /// Throughput lost to shipping, clamped at zero (same noise hardening
    /// as the observability rows).
    overhead: f64,
}

struct DurabilityPoint {
    app: &'static str,
    /// WAL fsync policy label of this run (all rows run under `Always`, the
    /// strictest policy — the one the group-commit window pays for).
    fsync: &'static str,
    /// Group-commit window in events: `1` reproduces the pre-group-commit
    /// per-event sync (the "before" row), the default window is the "after".
    group_window: u64,
    events: u64,
    checkpoints: u64,
    wal_bytes: u64,
    durable_keps: f64,
    replay_ms: f64,
}

/// Time a cold recovery over `dir`: snapshot restore + WAL replay + drain.
/// The store is built and the engine constructed *outside* the timed window,
/// and nothing is regenerated or pushed, so the measurement is recovery work
/// only.  `expected_events` pins losslessness.
fn timed_recovery(app: AppKind, options: &RunOptions, dir: &Path, expected_events: u64) -> f64 {
    fn go<A: Application>(
        application: A,
        store: Arc<StateStore>,
        engine_config: EngineConfig,
        dir: &Path,
        expected_events: u64,
    ) -> f64
    where
        A::Payload: WalPayload,
    {
        let engine = Engine::new(engine_config);
        let app = Arc::new(application);
        let t = Instant::now();
        let mut session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .durable(dir)
            .recover()
            .open()
            .expect("recovery benchmark run");
        session.flush().expect("replay drain");
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            session.ingested(),
            expected_events,
            "recovery must be lossless"
        );
        elapsed
    }
    let spec = &options.spec;
    let cfg = options.engine;
    match app {
        AppKind::Gs => go(
            gs::GrepSum::default(),
            gs::build_store(spec),
            cfg,
            dir,
            expected_events,
        ),
        AppKind::Sl => go(
            sl::StreamingLedger,
            sl::build_store(spec),
            cfg,
            dir,
            expected_events,
        ),
        AppKind::Ob => go(
            ob::OnlineBidding,
            ob::build_store(spec),
            cfg,
            dir,
            expected_events,
        ),
        AppKind::Tp => go(
            tp::TollProcessing,
            tp::build_store(spec),
            cfg,
            dir,
            expected_events,
        ),
    }
}

/// Two durable TStream runs per app under `FsyncPolicy::Always` (1 core,
/// checkpoint every 3 batches so both checkpoints and surviving segments
/// exist), then a cold, timed recovery over each directory.
///
/// The two rows bracket the group-commit change: a window of **1 event**
/// reproduces the old per-event `sync_data` tax (one fsync per append —
/// the "before"), while the default window amortizes the sync over the
/// whole group (the "after").  Both rows run under `Always`, the policy
/// whose ack contract the window actually covers.
fn durability_sweep(quick: bool) -> Vec<DurabilityPoint> {
    let default_window = EngineConfig::default().group_window_events;
    let mut points = Vec::new();
    for app in AppKind::ALL {
        for window in [1u64, default_window] {
            let events = events_for(app, 1, quick);
            let spec = WorkloadSpec::default().events(events);
            let engine = EngineConfig::with_executors(1)
                .punctuation(500)
                .checkpoint_every(3)
                .fsync(FsyncPolicy::Always)
                .group_window(window, if window == 1 { 1 } else { 32 * 1024 });
            let options = RunOptions::new(spec, engine);
            let dir = std::env::temp_dir().join(format!(
                "tstream-bench-durability-{}-w{}-{}",
                app.label(),
                window,
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let (report, _) = run_benchmark_durable(app, SchemeKind::TStream, &options, &dir, None)
                .expect("durable benchmark run");
            let replay_ms = timed_recovery(app, &options, &dir, report.events);
            eprintln!(
                "durability  {:<3} always/w{:<4} {:>7} events  {:>3} checkpoints  \
                 {:>9} WAL bytes  {:>8.1} K/s  replay {:>7.2} ms",
                app.label(),
                window,
                report.events,
                report.checkpoints,
                report.wal_bytes,
                report.throughput_keps(),
                replay_ms
            );
            points.push(DurabilityPoint {
                app: app.label(),
                fsync: "always",
                group_window: window,
                events: report.events,
                checkpoints: report.checkpoints,
                wal_bytes: report.wal_bytes,
                durable_keps: report.throughput_keps(),
                replay_ms,
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    points
}

/// Paired instrumented/disabled TStream runs per app, interleaved and
/// taken best-of-N, so slow drifts of a shared host (thermal, neighbours)
/// hit both modes alike and a single noisy run cannot fake an overhead.
/// The best-of pair approximates each mode's true cost floor; the delta is
/// what the always-on instrumentation actually costs.
fn observability_sweep(quick: bool) -> Vec<ObservabilityPoint> {
    const REPS: usize = 5;
    let mut points = Vec::new();
    for app in AppKind::ALL {
        let events = events_for(app, 1, quick);
        let mut best = [0.0f64; 2];
        for _rep in 0..REPS {
            for (slot, obs) in [(0, ObsConfig::default()), (1, ObsConfig::disabled())] {
                let spec = WorkloadSpec::default().events(events);
                let engine = EngineConfig::with_executors(1)
                    .punctuation(500)
                    .observability(obs);
                let options = RunOptions::new(spec, engine);
                let report = run_benchmark(app, SchemeKind::TStream, &options);
                best[slot] = best[slot].max(report.throughput_keps());
            }
        }
        let overhead = if best[1] > 0.0 {
            (1.0 - best[0] / best[1]).max(0.0)
        } else {
            0.0
        };
        eprintln!(
            "observability {:<3} instrumented {:>8.1} K/s  disabled {:>8.1} K/s  \
             overhead {:>5.2}%",
            app.label(),
            best[0],
            best[1],
            100.0 * overhead
        );
        points.push(ObservabilityPoint {
            app: app.label(),
            instrumented_keps: best[0],
            disabled_keps: best[1],
            overhead,
        });
    }
    points
}

/// Paired shipping-on/shipping-off durable TStream runs per app,
/// interleaved and taken best-of-N like the observability sweep.  The
/// shipping run attaches a [`Shipper`] over an in-process
/// [`ChannelTransport`] with no standby draining it: that isolates exactly
/// the primary-side tax — reading each sealed segment back, encoding it
/// and enqueueing it from the executor leader's epoch hook —
/// (`bench_guard.sh` caps the mean at 10%).
fn replication_sweep(quick: bool) -> Vec<ReplicationPoint> {
    const REPS: usize = 4;

    fn durable_keps<A: Application>(
        application: A,
        store: Arc<StateStore>,
        payloads: Vec<A::Payload>,
        engine_config: EngineConfig,
        dir: &Path,
        ship: bool,
    ) -> f64
    where
        A::Payload: WalPayload,
    {
        let _ = std::fs::remove_dir_all(dir);
        let engine = Engine::new(engine_config);
        let app = Arc::new(application);
        let mut session = engine
            .session_builder(&app, &store, &Scheme::TStream)
            .durable(dir)
            .open()
            .expect("replication benchmark session");
        let _shipper = if ship {
            let log = session.log().expect("durable session has a log").clone();
            Some(
                Shipper::attach(&log, ChannelTransport::new(), engine.observability())
                    .expect("attach shipper"),
            )
        } else {
            None
        };
        for payload in payloads {
            session.push(payload).expect("durable push");
        }
        let report = session.report().expect("replication benchmark report");
        report.throughput_keps()
    }

    let mut points = Vec::new();
    for app in AppKind::ALL {
        // 5x the quick-sweep event count: a 2 000-event run finishes in
        // ~15 ms, where scheduler noise swamps the single-digit systematic
        // shipping tax; ~20 epochs per run keeps the paired ratio stable.
        let events = events_for(app, 1, quick) * 5;
        let spec = WorkloadSpec::default().events(events);
        let engine = EngineConfig::with_executors(1)
            .punctuation(500)
            .checkpoint_every(3);
        let dir = std::env::temp_dir().join(format!(
            "tstream-bench-replication-{}-{}",
            app.label(),
            std::process::id()
        ));
        let mut best = [0.0f64; 2];
        for _rep in 0..REPS {
            for (slot, ship) in [(0, true), (1, false)] {
                let keps = match app {
                    AppKind::Gs => durable_keps(
                        gs::GrepSum::default(),
                        gs::build_store(&spec),
                        gs::generate(&spec),
                        engine,
                        &dir,
                        ship,
                    ),
                    AppKind::Sl => durable_keps(
                        sl::StreamingLedger,
                        sl::build_store(&spec),
                        sl::generate(&spec),
                        engine,
                        &dir,
                        ship,
                    ),
                    AppKind::Ob => durable_keps(
                        ob::OnlineBidding,
                        ob::build_store(&spec),
                        ob::generate(&spec),
                        engine,
                        &dir,
                        ship,
                    ),
                    AppKind::Tp => durable_keps(
                        tp::TollProcessing,
                        tp::build_store(&spec),
                        tp::generate(&spec),
                        engine,
                        &dir,
                        ship,
                    ),
                };
                best[slot] = best[slot].max(keps);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let overhead = if best[1] > 0.0 {
            (1.0 - best[0] / best[1]).max(0.0)
        } else {
            0.0
        };
        eprintln!(
            "replication {:<3} shipping {:>8.1} K/s  baseline {:>8.1} K/s  overhead {:>5.2}%",
            app.label(),
            best[0],
            best[1],
            100.0 * overhead
        );
        points.push(ReplicationPoint {
            app: app.label(),
            shipping_keps: best[0],
            baseline_keps: best[1],
            overhead,
        });
    }
    points
}

/// 2- and 4-session concurrent TStream runs over one engine: one app per
/// session (the first N of GS/SL/OB/TP), each on its own store, multiplexed
/// over the shared executor pool.
fn concurrency_sweep(quick: bool) -> Vec<ConcurrencyPoint> {
    let mut points = Vec::new();
    for n in [2usize, 4] {
        let apps = &AppKind::ALL[..n];
        let events = events_for(AppKind::Sl, 1, quick);
        let spec = WorkloadSpec::default().events(events);
        let engine = EngineConfig::with_executors(1).punctuation(500);
        let options = RunOptions::new(spec, engine);
        let run = run_benchmark_concurrent(apps, SchemeKind::TStream, &options);
        let labels: Vec<&str> = apps.iter().map(|a| a.label()).collect();
        eprintln!(
            "concurrency {} sessions ({})  {:>8} events  {:>8.1} K/s aggregate",
            n,
            labels.join("+"),
            run.events(),
            run.aggregate_keps()
        );
        for report in &run.reports {
            assert_eq!(
                report.events, events as u64,
                "session {:?} lost events",
                report.label
            );
        }
        points.push(ConcurrencyPoint {
            sessions: n,
            apps: labels.join("+"),
            events: run.events(),
            aggregate_keps: run.aggregate_keps(),
        });
    }
    points
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_engine.json".to_owned())
    };

    let mut points = Vec::new();
    let mut breakdowns = Vec::new();
    for app in AppKind::ALL {
        for &cores in &cfg.core_sweep() {
            let events = events_for(app, cores, cfg.quick);
            for scheme in SchemeKind::ALL {
                let report = run_point(app, scheme, cores, events, 500);
                if cores == 1 && matches!(scheme, SchemeKind::TStream) {
                    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
                    breakdowns.push(BreakdownPoint {
                        app: app.label(),
                        compute_ms: ms(report.compute_time),
                        state_access_ms: ms(report.state_access_time),
                        useful_ms: ms(report.breakdown.useful),
                        sync_ms: ms(report.breakdown.sync),
                        lock_ms: ms(report.breakdown.lock),
                        rma_ms: ms(report.breakdown.rma),
                        others_ms: ms(report.breakdown.others),
                        compute_share: report.compute_mode_share(),
                    });
                }
                let ms = |p: f64| {
                    report
                        .latency
                        .percentile(p)
                        .map(|d| d.as_secs_f64() * 1e3)
                        .unwrap_or(0.0)
                };
                eprintln!(
                    "{:>2} cores  {:<3} {:<8} {:>9.1} K/s",
                    cores,
                    app.label(),
                    scheme.label(),
                    report.throughput_keps()
                );
                points.push(Point {
                    app: app.label(),
                    scheme: scheme.label(),
                    cores,
                    events: report.events,
                    committed: report.committed,
                    rejected: report.rejected,
                    keps: report.throughput_keps(),
                    p50_ms: ms(50.0),
                    p99_ms: ms(99.0),
                    compute_share: report.compute_mode_share(),
                });
            }
        }
    }

    let durability = durability_sweep(cfg.quick);
    let concurrency = concurrency_sweep(cfg.quick);
    let observability = observability_sweep(cfg.quick);
    let replication = replication_sweep(cfg.quick);

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"fig08_throughput sweep (pipelined runtime)\","
    );
    let _ = writeln!(json, "  \"unit\": \"K events/s; latency ms\",");
    let _ = writeln!(json, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"punctuation_interval\": 500,");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"scheme\": \"{}\", \"cores\": {}, \"events\": {}, \
             \"committed\": {}, \"rejected\": {}, \"keps\": {:.2}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"compute_share\": {:.4}}}",
            p.app,
            p.scheme,
            p.cores,
            p.events,
            p.committed,
            p.rejected,
            p.keps,
            p.p50_ms,
            p.p99_ms,
            p.compute_share
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"concurrency\": [\n");
    for (i, p) in concurrency.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"sessions\": {}, \"apps\": \"{}\", \"scheme\": \"TStream\", \
             \"events\": {}, \"aggregate_keps\": {:.2}}}",
            p.sessions, p.apps, p.events, p.aggregate_keps
        );
        json.push_str(if i + 1 < concurrency.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"breakdown\": [\n");
    for (i, p) in breakdowns.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"scheme\": \"TStream\", \"cores\": 1, \
             \"compute_ms\": {:.3}, \"state_access_ms\": {:.3}, \"useful_ms\": {:.3}, \
             \"sync_ms\": {:.3}, \"lock_ms\": {:.3}, \"rma_ms\": {:.3}, \
             \"others_ms\": {:.3}, \"compute_share\": {:.4}}}",
            p.app,
            p.compute_ms,
            p.state_access_ms,
            p.useful_ms,
            p.sync_ms,
            p.lock_ms,
            p.rma_ms,
            p.others_ms,
            p.compute_share
        );
        json.push_str(if i + 1 < breakdowns.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"observability\": [\n");
    for (i, p) in observability.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"scheme\": \"TStream\", \"cores\": 1, \
             \"instrumented_keps\": {:.2}, \"disabled_keps\": {:.2}, \
             \"overhead\": {:.4}}}",
            p.app, p.instrumented_keps, p.disabled_keps, p.overhead
        );
        json.push_str(if i + 1 < observability.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"replication\": [\n");
    for (i, p) in replication.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"scheme\": \"TStream\", \"cores\": 1, \
             \"shipping_keps\": {:.2}, \"baseline_keps\": {:.2}, \
             \"overhead\": {:.4}}}",
            p.app, p.shipping_keps, p.baseline_keps, p.overhead
        );
        json.push_str(if i + 1 < replication.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"durability\": [\n");
    for (i, p) in durability.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"scheme\": \"TStream\", \"fsync\": \"{}\", \
             \"group_window\": {}, \"events\": {}, \"checkpoints\": {}, \"wal_bytes\": {}, \
             \"durable_keps\": {:.2}, \"replay_ms\": {:.3}}}",
            p.app,
            p.fsync,
            p.group_window,
            p.events,
            p.checkpoints,
            p.wal_bytes,
            p.durable_keps,
            p.replay_ms
        );
        json.push_str(if i + 1 < durability.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("writing the snapshot file");
    println!("wrote {} benchmark points to {out_path}", points.len());
}
