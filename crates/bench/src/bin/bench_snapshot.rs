//! Perf-trajectory snapshot: run the Figure-8 style throughput sweep across
//! all four applications and write the results as machine-readable JSON
//! (`BENCH_engine.json` by default), so the repository carries a perf
//! baseline that later PRs can diff against.
//!
//! ```text
//! cargo run --release -p tstream-bench --bin bench_snapshot -- --quick
//! cargo run --release -p tstream-bench --bin bench_snapshot -- --quick --out BENCH_engine.json
//! ```

use std::fmt::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, run_point, HarnessConfig};

struct Point {
    app: &'static str,
    scheme: &'static str,
    cores: usize,
    events: u64,
    committed: u64,
    rejected: u64,
    keps: f64,
    p50_ms: f64,
    p99_ms: f64,
    compute_share: f64,
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_engine.json".to_owned())
    };

    let mut points = Vec::new();
    for app in AppKind::ALL {
        for &cores in &cfg.core_sweep() {
            let events = events_for(app, cores, cfg.quick);
            for scheme in SchemeKind::ALL {
                let report = run_point(app, scheme, cores, events, 500);
                let ms = |p: f64| {
                    report
                        .latency
                        .percentile(p)
                        .map(|d| d.as_secs_f64() * 1e3)
                        .unwrap_or(0.0)
                };
                eprintln!(
                    "{:>2} cores  {:<3} {:<8} {:>9.1} K/s",
                    cores,
                    app.label(),
                    scheme.label(),
                    report.throughput_keps()
                );
                points.push(Point {
                    app: app.label(),
                    scheme: scheme.label(),
                    cores,
                    events: report.events,
                    committed: report.committed,
                    rejected: report.rejected,
                    keps: report.throughput_keps(),
                    p50_ms: ms(50.0),
                    p99_ms: ms(99.0),
                    compute_share: report.compute_mode_share(),
                });
            }
        }
    }

    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"fig08_throughput sweep (pipelined runtime)\","
    );
    let _ = writeln!(json, "  \"unit\": \"K events/s; latency ms\",");
    let _ = writeln!(json, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"punctuation_interval\": 500,");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"scheme\": \"{}\", \"cores\": {}, \"events\": {}, \
             \"committed\": {}, \"rejected\": {}, \"keps\": {:.2}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"compute_share\": {:.4}}}",
            p.app,
            p.scheme,
            p.cores,
            p.events,
            p.committed,
            p.rejected,
            p.keps,
            p.p50_ms,
            p.p99_ms,
            p.compute_share
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("writing the snapshot file");
    println!("wrote {} benchmark points to {out_path}", points.len());
}
