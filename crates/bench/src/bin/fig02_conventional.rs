//! Figure 2 / Section II-A motivation: Toll Processing implemented with
//! key-based partitioning and exclusive state (Figure 2(a)) versus the
//! concurrent-state-access implementation processed by TStream
//! (Figure 2(b)).
//!
//! The paper uses this contrast qualitatively; the harness quantifies the two
//! problems it calls out — congestion state repeatedly forwarded between
//! operators, and tolls computed against stale state whenever tuples outrun
//! the buffering limit — alongside raw throughput for both designs.

use std::sync::Arc;

use tstream_apps::conventional::{run_conventional, ConventionalConfig};
use tstream_apps::runner::render_table;
use tstream_apps::tp;
use tstream_apps::workload::WorkloadSpec;
use tstream_bench::HarnessConfig;
use tstream_core::{Engine, EngineConfig, Scheme};

fn main() {
    let cfg = HarnessConfig::from_args();
    let events_n = if cfg.quick { 30_000 } else { 240_000 };
    let spec = WorkloadSpec::default().events(events_n);
    let events = tp::generate(&spec);

    println!(
        "Figure 2 / Section II-A: conventional (key-partitioned) vs concurrent \
         state access on TP ({events_n} events)\n"
    );

    let mut rows = Vec::new();
    for executors in cfg.core_sweep() {
        // (a) Conventional: two operator stages, `executors` threads each, so
        // the total thread budget matches 2 × executors.
        for buffer_limit in [16usize, 256] {
            let report = run_conventional(
                &events,
                ConventionalConfig {
                    executors_per_operator: executors,
                    buffer_limit,
                    channel_capacity: 1024,
                },
            );
            rows.push(vec![
                format!("conventional (buf {buffer_limit})"),
                executors.to_string(),
                format!("{:.1}", report.throughput_keps()),
                format!("{:.1}%", 100.0 * report.forced_emission_ratio()),
                format!("{}", report.forwarded_state_bytes / 1024),
            ]);
        }

        // (b) Concurrent state access under TStream with the same number of
        // executors.
        let store = tp::build_store(&spec);
        let app = Arc::new(tp::TollProcessing);
        let engine = Engine::new(EngineConfig::with_executors(executors).punctuation(500));
        let report = engine.run(&app, &store, events.clone(), &Scheme::TStream);
        rows.push(vec![
            "concurrent (TStream)".into(),
            executors.to_string(),
            format!("{:.1}", report.throughput_keps()),
            "0.0%".into(),
            "0".into(),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "implementation",
                "executors/op",
                "K events/s",
                "stale tolls",
                "state forwarded (KiB)",
            ],
            &rows
        )
    );

    println!("Paper shape: the conventional design either buffers aggressively (large buffer,");
    println!("no stale tolls, extra latency and memory) or emits tolls against stale congestion");
    println!("state, and it continuously forwards the congestion tables between operators.");
    println!("The concurrent-state-access design removes both problems and is what the rest of");
    println!("the evaluation (Figures 8-14) is built on.");
}
