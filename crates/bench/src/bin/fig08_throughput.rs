//! Figure 8: throughput (K events/s) of GS, SL, OB and TP under No-Lock,
//! LOCK, MVLK, PAT and TStream while scaling the number of cores.

use tstream_apps::runner::render_table;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, run_point, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    for app in AppKind::ALL {
        println!(
            "Figure 8 ({}): throughput in K events/s (punctuation interval 500, shared-nothing)\n",
            app.label()
        );
        let mut rows = Vec::new();
        for cores in cfg.core_sweep() {
            let events = events_for(app, cores, cfg.quick);
            let mut row = vec![cores.to_string()];
            for scheme in SchemeKind::ALL {
                let report = run_point(app, scheme, cores, events, 500);
                row.push(format!("{:.1}", report.throughput_keps()));
            }
            rows.push(row);
        }
        let header: Vec<&str> = std::iter::once("cores")
            .chain(SchemeKind::ALL.iter().map(|s| s.label()))
            .collect();
        println!("{}", render_table(&header, &rows));
    }
    println!("Paper shape: TStream is the best consistency-preserving scheme at high core");
    println!("counts (up to 4.8x over the second best); No-Lock bounds all schemes from above;");
    println!("PAT beats LOCK/MVLK except on TP, where 100 hot keys keep partitions contended.");
}
