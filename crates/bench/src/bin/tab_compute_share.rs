//! Section VI-A (in-text table): fraction of time spent in compute mode on a
//! single core for each application (the paper reports TP 39 %, SL 29 %,
//! OB 22 %, GS 13 %).

use tstream_apps::runner::render_table;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, pct, run_point, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!("Section VI-A: compute-mode time share on a single core (TStream)\n");
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let events = events_for(app, 1, cfg.quick);
        let report = run_point(app, SchemeKind::TStream, 1, events, 500);
        rows.push(vec![
            app.label().to_string(),
            pct(report.compute_mode_share()),
            format!("{:.1}", report.throughput_keps()),
        ]);
    }
    println!(
        "{}",
        render_table(&["app", "compute-mode share", "K events/s"], &rows)
    );
    println!("Paper reference: TP 39%, SL 29%, OB 22%, GS 13% — GS is the most state-access");
    println!("bound application, TP the least.");
}
