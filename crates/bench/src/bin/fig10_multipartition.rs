//! Figure 10: PAT vs TStream under multi-partition transactions on the GS
//! microbenchmark: (a) varying the ratio of multi-partition transactions at
//! length 6, (b) varying the length at ratio 50% — for write-only and
//! read-only workloads.
//!
//! Since the sharding rework this harness runs against a **real** partitioned
//! store: the GS table is physically split over one shard per core
//! (`WorkloadSpec::shards`), the engine routes operation chains shard-affine,
//! and the trailing table reports the measured per-shard chain placement of a
//! TStream run instead of a simulated partitioning.

use tstream_apps::runner::{render_table, run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_bench::HarnessConfig;
use tstream_core::{EngineConfig, RunReport};
use tstream_txn::NumaModel;

fn run_report(
    cfg: &HarnessConfig,
    cores: usize,
    ratio: f64,
    len: usize,
    read_only: bool,
    scheme: SchemeKind,
) -> RunReport {
    let events = if cfg.quick { 4_000 } else { 40_000 };
    // The PAT partition count tracks the core count (the paper's setup); the
    // physical shard count is a state-layout knob and is floored at 4 so the
    // shard-placement report stays meaningful on small machines (with more
    // shards than executor pools, each pool owns several whole shards).
    let spec = WorkloadSpec::default()
        .events(events)
        .read_ratio(if read_only { 1.0 } else { 0.0 })
        .multi_partition(ratio, len)
        .partitions(cores as u32)
        .shards((cores as u32).max(4));
    let engine = EngineConfig::with_executors(cores)
        .punctuation(500)
        .numa(NumaModel::classify_only());
    let mut options = RunOptions::new(spec, engine);
    options.pat_partitions = cores as u32;
    options.gs_with_summation = false;
    run_benchmark(AppKind::Gs, scheme, &options)
}

fn run(
    cfg: &HarnessConfig,
    cores: usize,
    ratio: f64,
    len: usize,
    read_only: bool,
    scheme: SchemeKind,
) -> f64 {
    run_report(cfg, cores, ratio, len, read_only, scheme).throughput_keps()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(16);

    let shards = (cores as u32).max(4);
    println!(
        "Figure 10(a): throughput vs ratio of multi-partition txns (length 6, {cores} cores,\n\
         store sharded over {shards} physical shards)\n"
    );
    let ratios: &[f64] = if cfg.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let mut rows = Vec::new();
    for &ratio in ratios {
        rows.push(vec![
            format!("{ratio:.1}"),
            format!("{:.1}", run(&cfg, cores, ratio, 6, false, SchemeKind::Pat)),
            format!("{:.1}", run(&cfg, cores, ratio, 6, true, SchemeKind::Pat)),
            format!(
                "{:.1}",
                run(&cfg, cores, ratio, 6, false, SchemeKind::TStream)
            ),
            format!(
                "{:.1}",
                run(&cfg, cores, ratio, 6, true, SchemeKind::TStream)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "mp ratio",
                "PAT (write-only)",
                "PAT (read-only)",
                "TStream (write-only)",
                "TStream (read-only)"
            ],
            &rows
        )
    );

    println!(
        "Figure 10(b): throughput vs length of multi-partition txns (ratio 50%, {cores} cores)\n"
    );
    let lengths: &[usize] = if cfg.quick {
        &[1, 6, 10]
    } else {
        &[1, 2, 4, 6, 8, 10]
    };
    let mut rows = Vec::new();
    for &len in lengths {
        let len = len.min(cores.max(1));
        rows.push(vec![
            len.to_string(),
            format!("{:.1}", run(&cfg, cores, 0.5, len, false, SchemeKind::Pat)),
            format!("{:.1}", run(&cfg, cores, 0.5, len, true, SchemeKind::Pat)),
            format!(
                "{:.1}",
                run(&cfg, cores, 0.5, len, false, SchemeKind::TStream)
            ),
            format!(
                "{:.1}",
                run(&cfg, cores, 0.5, len, true, SchemeKind::TStream)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "mp length",
                "PAT (write-only)",
                "PAT (read-only)",
                "TStream (write-only)",
                "TStream (read-only)"
            ],
            &rows
        )
    );

    // ---- Real shard placement: per-shard chain counts of one representative
    // TStream run (write-only, 50 % multi-partition, length capped at cores).
    let report = run_report(
        &cfg,
        cores,
        0.5,
        6.min(cores.max(1)),
        false,
        SchemeKind::TStream,
    );
    println!(
        "Measured shard placement (TStream, write-only, mp ratio 0.5, {} shards):\n",
        report.per_shard_chains.len()
    );
    let total: u64 = report.per_shard_chains.iter().sum();
    let rows: Vec<Vec<String>> = report
        .per_shard_chains
        .iter()
        .enumerate()
        .map(|(shard, &chains)| {
            vec![
                shard.to_string(),
                chains.to_string(),
                format!("{:.1}", 100.0 * chains as f64 / total.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["shard", "chains (all batches)", "share %"], &rows)
    );
    println!("Paper shape: PAT degrades as multi-partition ratio/length grows; TStream stays");
    println!("flat and beats PAT even with no multi-partition transactions at all.");
}
