//! Ablation: adaptive punctuation-interval tuning (Section VI-F future work).
//!
//! Figure 12 sweeps the punctuation interval by hand; the paper leaves the
//! estimation of the optimal interval to future work.  This harness runs the
//! hill-climbing [`AdaptiveIntervalController`] against real engine runs for
//! every application and reports the interval it converges to, its
//! throughput, and how that compares to the paper's fixed default of 500.

use std::time::Duration;

use tstream_apps::runner::{render_table, run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_bench::HarnessConfig;
use tstream_core::{AdaptiveConfig, AdaptiveIntervalController, EngineConfig, IntervalObservation};

fn measure(app: AppKind, cores: usize, events: usize, interval: usize) -> (f64, Duration) {
    let spec = WorkloadSpec::default().events(events);
    let engine = EngineConfig::with_executors(cores).punctuation(interval);
    let options = RunOptions::new(spec, engine);
    let report = run_benchmark(app, SchemeKind::TStream, &options);
    let p99 = report.latency.percentile(99.0).unwrap_or(Duration::ZERO);
    (report.throughput_keps(), p99)
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(8);
    let events = if cfg.quick { 8_000 } else { 60_000 };
    let max_rounds = if cfg.quick { 6 } else { 14 };

    println!(
        "Ablation: adaptive punctuation-interval tuning \
         ({cores} cores, {events} events per measurement, latency bound 5 ms)\n"
    );

    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let mut controller = AdaptiveIntervalController::new(
            AdaptiveConfig {
                latency_bound: Some(Duration::from_millis(5)),
                ..Default::default()
            },
            50,
        );
        let mut interval = controller.suggested_interval();
        let mut rounds = 0usize;
        for _ in 0..max_rounds {
            rounds += 1;
            let (keps, p99) = measure(app, cores, events, interval);
            interval = controller.observe(IntervalObservation {
                interval,
                throughput_keps: keps,
                p99,
            });
            if controller.converged() {
                break;
            }
        }
        let best = controller.best().expect("at least one feasible run");
        let (default_keps, default_p99) = measure(app, cores, events, 500);
        rows.push(vec![
            app.label().to_owned(),
            rounds.to_string(),
            best.interval.to_string(),
            format!("{:.1}", best.throughput_keps),
            format!("{:.2}", best.p99.as_secs_f64() * 1e3),
            format!("{:.1}", default_keps),
            format!("{:.2}", default_p99.as_secs_f64() * 1e3),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "app",
                "rounds",
                "tuned interval",
                "tuned K/s",
                "tuned p99 ms",
                "interval-500 K/s",
                "interval-500 p99 ms",
            ],
            &rows
        )
    );

    println!("Shape: the tuned interval lands in the flat region of Figure 12(a) for each");
    println!("application (larger for contended workloads like TP, smaller where the curve");
    println!("saturates early), matching or beating the fixed default of 500 while keeping");
    println!("p99 latency inside the bound.");
}
