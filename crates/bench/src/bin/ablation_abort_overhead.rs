//! Ablation: the cost of aborting multi-write transactions (Section IV-F).
//!
//! TStream decomposes every transaction into per-state operations and spreads
//! them over many chains, so aborting a multi-write transaction is expensive:
//! the batch has to be rolled back and replayed serially to preserve the
//! correct schedule.  The eager schemes only undo the offending transaction.
//! This harness injects a controlled fraction of aborting ten-write GS
//! transactions and measures how each scheme's throughput degrades — the
//! quantitative version of the limitation the paper states qualitatively.

use std::sync::Arc;

use tstream_apps::gs;
use tstream_apps::runner::render_table;
use tstream_apps::workload::{Rng, WorkloadSpec};
use tstream_apps::SchemeKind;
use tstream_bench::HarnessConfig;
use tstream_core::{Engine, EngineConfig};

/// Poison a fraction of write transactions so that one of their ten writes
/// violates GS's "records must be non-negative" consistency check.
fn poison(events: &mut [gs::GsEvent], fraction: f64, seed: u64) -> usize {
    let mut rng = Rng::new(seed);
    let mut poisoned = 0;
    for event in events.iter_mut() {
        if let Some(writes) = &mut event.writes {
            if rng.chance(fraction) {
                let slot = rng.next_below(writes.len() as u64) as usize;
                writes[slot] = -1;
                poisoned += 1;
            }
        }
    }
    poisoned
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(8);
    let events_n = if cfg.quick { 6_000 } else { 60_000 };
    let schemes = [SchemeKind::Lock, SchemeKind::Mvlk, SchemeKind::TStream];

    println!(
        "Ablation: multi-write abort overhead on write-only GS \
         ({events_n} events, transaction length 10, {cores} cores)\n"
    );

    let mut rows = Vec::new();
    for abort_fraction in [0.0f64, 0.005, 0.02, 0.05, 0.10] {
        let spec = WorkloadSpec::default()
            .events(events_n)
            .read_ratio(0.0)
            .seed(0xAB07);
        let mut events = gs::generate(&spec);
        let poisoned = poison(&mut events, abort_fraction, 0xFEED);

        let mut row = vec![
            format!("{:.1}%", abort_fraction * 100.0),
            poisoned.to_string(),
        ];
        for scheme in schemes {
            let store = gs::build_store(&spec);
            let app = Arc::new(gs::GrepSum {
                with_summation: false,
            });
            let engine = Engine::new(EngineConfig::with_executors(cores).punctuation(500));
            let report = engine.run(&app, &store, events.clone(), &scheme.build(cores as u32));
            assert_eq!(
                report.rejected,
                poisoned as u64,
                "{}: every poisoned transaction (and only those) must be rejected",
                scheme.label()
            );
            row.push(format!("{:.1}", report.throughput_keps()));
        }
        rows.push(row);
    }

    let header: Vec<&str> = ["abort rate", "poisoned txns"]
        .into_iter()
        .chain(schemes.iter().map(|s| s.label()))
        .collect();
    println!("{}", render_table(&header, &rows));

    println!("Shape: with no aborts TStream is far ahead; as the fraction of aborting");
    println!("multi-write transactions grows, TStream pays for rolling back and serially");
    println!("replaying the affected batches (Section IV-F), so its advantage narrows while");
    println!("the lock-based schemes only undo the offending transaction.  Correctness is");
    println!("identical in all cases: rejected counts match the injected poison exactly.");
}
