//! Figure 14: TStream throughput under the three NUMA-aware chain placements
//! (shared-nothing, shared-everything, shared-per-socket), with work stealing
//! enabled for the shared configurations.

use tstream_apps::runner::{render_table, run_benchmark, RunOptions};
use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, HarnessConfig};
use tstream_core::{ChainPlacement, EngineConfig};
use tstream_txn::NumaModel;

fn run(
    cfg: &HarnessConfig,
    app: AppKind,
    cores: usize,
    placement: ChainPlacement,
    stealing: bool,
) -> f64 {
    let events = events_for(app, cores, cfg.quick);
    let spec = WorkloadSpec::default()
        .events(events)
        .partitions(cores as u32);
    let engine = EngineConfig::with_executors(cores)
        .punctuation(500)
        .placement(placement)
        .work_stealing(stealing)
        .numa(NumaModel::paper_calibrated());
    let mut options = RunOptions::new(spec, engine);
    options.pat_partitions = cores as u32;
    run_benchmark(app, SchemeKind::TStream, &options).throughput_keps()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores;
    println!(
        "Figure 14: TStream throughput (K txns/s) under NUMA-aware configurations ({cores} cores,"
    );
    println!("synthetic sockets of 10 cores, calibrated remote-access penalty)\n");

    let mut rows = Vec::new();
    for app in AppKind::ALL {
        rows.push(vec![
            app.label().to_string(),
            format!(
                "{:.1}",
                run(&cfg, app, cores, ChainPlacement::SharedNothing, false)
            ),
            format!(
                "{:.1}",
                run(&cfg, app, cores, ChainPlacement::SharedEverything, true)
            ),
            format!(
                "{:.1}",
                run(&cfg, app, cores, ChainPlacement::SharedPerSocket, true)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "app",
                "shared-nothing",
                "shared-everything",
                "shared-per-socket"
            ],
            &rows
        )
    );

    println!(
        "Work-stealing ablation (shared-everything, GS): throughput with and without stealing\n"
    );
    let with = run(
        &cfg,
        AppKind::Gs,
        cores,
        ChainPlacement::SharedEverything,
        true,
    );
    let without = run(
        &cfg,
        AppKind::Gs,
        cores,
        ChainPlacement::SharedEverything,
        false,
    );
    println!("  with stealing:    {with:.1} K/s");
    println!("  without stealing: {without:.1} K/s");
    println!("\nPaper shape: shared-nothing wins for every application; work stealing helps the");
    println!("shared configurations but does not close the gap (Section VI-F).");
}
