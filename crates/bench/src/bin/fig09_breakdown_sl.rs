//! Figure 9: per-transaction runtime breakdown in SL (Useful / Sync / RMA /
//! Lock / Others), on a single synthetic socket and on all sockets.

use tstream_apps::runner::render_table;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, pct, run_point, HarnessConfig};
use tstream_stream::metrics::Component;

fn breakdown_rows(cores: usize, quick: bool) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for scheme in SchemeKind::ALL {
        let events = events_for(AppKind::Sl, cores, quick);
        let report = run_point(AppKind::Sl, scheme, cores, events, 500);
        let mut row = vec![scheme.label().to_string()];
        for c in [
            Component::Useful,
            Component::Sync,
            Component::Rma,
            Component::Lock,
            Component::Others,
        ] {
            row.push(pct(report.breakdown.fraction(c)));
        }
        rows.push(row);
    }
    rows
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let single_socket = 10.min(cfg.max_cores);
    let all_sockets = cfg.max_cores;

    println!(
        "Figure 9(a): runtime breakdown per state transaction in SL, single socket ({single_socket} cores)\n"
    );
    println!(
        "{}",
        render_table(
            &["scheme", "Useful", "Sync", "RMA", "Lock", "Others"],
            &breakdown_rows(single_socket, cfg.quick)
        )
    );

    println!(
        "Figure 9(b): runtime breakdown per state transaction in SL, all sockets ({all_sockets} cores)\n"
    );
    println!(
        "{}",
        render_table(
            &["scheme", "Useful", "Sync", "RMA", "Lock", "Others"],
            &breakdown_rows(all_sockets, cfg.quick)
        )
    );
    println!("Paper shape: Sync dominates every consistency-preserving prior scheme (~80%);");
    println!("No-Lock is dominated by Others (index lookups); TStream trades the lock waits");
    println!("for barrier synchronisation, which is still visible on SL because of its heavy");
    println!("data dependencies.");
}
