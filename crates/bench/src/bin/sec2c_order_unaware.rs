//! Section II-C: why classic order-unaware concurrency controls (T/O, OCC)
//! are unsuitable for concurrent stateful stream processing.
//!
//! The paper argues that timestamp-ordering either rejects transactions that
//! must commit (violating exactly-once processing of the input stream) or,
//! when restarted with fresh timestamps, violates the state access order
//! (F3); OCC similarly serialises in commit order rather than event order.
//! This harness quantifies both effects on a write-only, skewed GS workload:
//! for every scheme it reports the fraction of rejected events and the number
//! of state cells whose final value differs from the correct state
//! transaction schedule (serial execution in timestamp order).

use std::sync::Arc;

use tstream_apps::runner::render_table;
use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{gs, SchemeKind};
use tstream_bench::HarnessConfig;
use tstream_core::{Engine, EngineConfig, Scheme};
use tstream_txn::nolock::NoLockScheme;
use tstream_txn::occ::OccScheme;
use tstream_txn::to::{ToPolicy, ToScheme};

/// Number of table cells whose committed value differs between two snapshots.
fn diverging_cells(
    a: &[(String, u64, tstream_state::Value)],
    b: &[(String, u64, tstream_state::Value)],
) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(16);
    let events = if cfg.quick { 5_000 } else { 40_000 };

    // Write-only, moderately skewed GS: the worst case for freshness checks,
    // and the configuration Figure 11(b) uses for the contention study.
    let spec = WorkloadSpec::default()
        .events(events)
        .read_ratio(0.0)
        .skew(0.6);
    let payloads = gs::generate(&spec);
    let app = Arc::new(gs::GrepSum {
        with_summation: false,
    });

    // Reference: serial execution in timestamp order (1 executor, any
    // consistency-preserving scheme).  This is the "correct state transaction
    // schedule" of Definition 2.
    let reference_store = gs::build_store(&spec);
    // Run for the store's final state only; the report itself is irrelevant.
    let _ = Engine::new(EngineConfig::with_executors(1).punctuation(500)).run(
        &app,
        &reference_store,
        payloads.clone(),
        &Scheme::TStream,
    );
    let reference = reference_store.snapshot();

    println!(
        "Section II-C: order-unaware concurrency controls on write-only GS \
         ({events} events, skew 0.6, {cores} cores)\n"
    );

    let mut rows = Vec::new();
    let candidates: Vec<(String, Scheme)> = vec![
        ("TStream".into(), Scheme::TStream),
        (
            "T/O (reject)".into(),
            Scheme::Eager(Arc::new(ToScheme::new(ToPolicy::Reject))),
        ),
        (
            "T/O (restamp)".into(),
            Scheme::Eager(Arc::new(ToScheme::new(ToPolicy::Restamp))),
        ),
        ("OCC".into(), Scheme::Eager(Arc::new(OccScheme::default()))),
        (
            "No-Lock".into(),
            Scheme::Eager(Arc::new(NoLockScheme::new())),
        ),
    ];
    for (label, scheme) in candidates {
        let store = gs::build_store(&spec);
        let engine = Engine::new(EngineConfig::with_executors(cores).punctuation(500));
        let report = engine.run(&app, &store, payloads.clone(), &scheme);
        let divergence = diverging_cells(&store.snapshot(), &reference);
        rows.push(vec![
            label,
            format!("{:.1}", report.throughput_keps()),
            format!("{}", report.committed),
            format!("{}", report.rejected),
            format!(
                "{:.2}%",
                100.0 * report.rejected as f64 / report.events.max(1) as f64
            ),
            format!("{divergence}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "K events/s",
                "committed",
                "rejected",
                "reject %",
                "diverging cells",
            ],
            &rows
        )
    );

    println!("Paper shape: TStream commits every event and matches the serial-order state");
    println!("exactly.  T/O with the reject policy loses a growing fraction of events under");
    println!("contention; with the restamp policy (and with OCC / No-Lock) everything commits");
    println!("but the final state diverges from the correct schedule — neither behaviour is");
    println!("acceptable for stateful stream processing (Section II-C).");
    let _ = SchemeKind::ORDER_UNAWARE; // documented entry point for library users
}
