//! Figure 1: severe lock contention of the PAT scheme on Toll Processing.
//!
//! For 1..N cores, runs TP under PAT and reports the fraction of transaction
//! processing time spent on (i) state access, (ii) access overhead (lock
//! insertion + blocking on counters) and (iii) everything else — the three
//! series of the paper's Figure 1.

use tstream_apps::runner::render_table;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, pct, run_point, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!("Figure 1: time breakdown of PAT on TP vs number of cores\n");
    let mut rows = Vec::new();
    for cores in cfg.core_sweep() {
        let events = events_for(AppKind::Tp, cores, cfg.quick);
        let report = run_point(AppKind::Tp, SchemeKind::Pat, cores, events, 500);
        let b = &report.breakdown;
        let total = b.total().as_secs_f64().max(f64::MIN_POSITIVE);
        let state_access = (b.useful + b.rma).as_secs_f64() / total;
        let overhead = (b.sync + b.lock).as_secs_f64() / total;
        let others = b.others.as_secs_f64() / total;
        rows.push(vec![
            cores.to_string(),
            pct(state_access),
            pct(overhead),
            pct(others),
            format!("{:.1}", report.throughput_keps()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "cores",
                "state access",
                "access overhead",
                "others",
                "K events/s"
            ],
            &rows
        )
    );
    println!("Paper shape: the access-overhead share grows with the core count until it");
    println!("dominates, which motivates TStream (Section I, Figure 1).");
}
