//! Section VI-G: sanity comparison against S-Store on its micro-benchmark
//! (one stored procedure with three write operations, single core).
//!
//! The real S-Store binary is not available; following DESIGN.md we model its
//! trigger-based execution style — every write is dispatched as an
//! independent micro-task with a thread yield (context switch) in between —
//! and compare it with the PAT scheme running inside our engine, which
//! executes the three writes consecutively on one thread.  The paper reports
//! ~3.6K events/s for S-Store vs ~11.7K events/s for its PAT
//! re-implementation (about 3x).

use std::sync::Arc;
use std::time::Instant;

use tstream_apps::workload::WorkloadSpec;
use tstream_apps::{runner::RunOptions, AppKind, SchemeKind};
use tstream_bench::HarnessConfig;
use tstream_core::EngineConfig;
use tstream_state::{StateStore, TableBuilder, TableId, Value};

/// Simulated trigger-style execution: each of the three writes of the stored
/// procedure is dispatched as its own task, with a context switch between
/// tasks (S-Store's trigger chain).  S-Store is a partitioned engine, so the
/// model runs against the sharded store API with a single shard — the
/// single-core configuration of the paper's comparison.
fn run_trigger_style(events: usize) -> f64 {
    let table = TableBuilder::new("t")
        .extend((0..1_000u64).map(|k| (k, Value::Long(0))))
        .build_sharded(1)
        .unwrap();
    let store: Arc<StateStore> = StateStore::with_shards(vec![table], 1).unwrap();
    let start = Instant::now();
    for i in 0..events {
        for w in 0..3u64 {
            let key = (i as u64 * 3 + w) % 1_000;
            let record = store.record(TableId(0), key).unwrap();
            record.update_committed(|v| {
                if let Value::Long(x) = v {
                    *x += 1;
                }
            });
            // The trigger hand-off: the next write runs in a different task.
            std::thread::yield_now();
        }
    }
    events as f64 / start.elapsed().as_secs_f64() / 1_000.0
}

/// The same stored procedure (three writes per event) executed by the PAT
/// scheme inside the engine on a single core.
fn run_pat(events: usize) -> f64 {
    let spec = WorkloadSpec::default()
        .events(events)
        .read_ratio(0.0)
        .multi_partition(0.0, 1)
        .partitions(1)
        .shards(1);
    let mut spec = spec;
    spec.txn_len = 3;
    spec.keys = 1_000;
    let engine = EngineConfig::with_executors(1).punctuation(500);
    let mut options = RunOptions::new(spec, engine);
    options.pat_partitions = 1;
    options.gs_with_summation = false;
    tstream_apps::run_benchmark(AppKind::Gs, SchemeKind::Pat, &options).throughput_keps()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let events = if cfg.quick { 20_000 } else { 200_000 };
    println!(
        "Section VI-G: S-Store-style trigger execution vs PAT (single core, 3-write procedure)\n"
    );
    let trigger = run_trigger_style(events);
    let pat = run_pat(events);
    println!("  trigger-style (S-Store model): {trigger:.1} K events/s");
    println!("  PAT inside this engine:        {pat:.1} K events/s");
    println!(
        "  ratio:                         {:.1}x",
        pat / trigger.max(f64::MIN_POSITIVE)
    );
    println!(
        "\nPaper reference: S-Store ~3.6K events/s, re-implemented PAT ~11.7K events/s (~3x),"
    );
    println!("attributed to consecutive execution by one thread vs trigger dispatch overhead.");
}
