//! Figure 12: effect of the punctuation interval on TStream — (a) throughput
//! and (b) 99th-percentile end-to-end processing latency, for all four
//! applications.

use tstream_apps::runner::render_table;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, ms, run_point, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(16);
    let intervals: &[usize] = if cfg.quick {
        &[100, 500, 1000]
    } else {
        &[25, 50, 100, 250, 500, 750, 1000]
    };

    println!(
        "Figure 12(a): TStream throughput (K events/s) vs punctuation interval ({cores} cores)\n"
    );
    let mut thr_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for &interval in intervals {
        let mut thr_row = vec![interval.to_string()];
        let mut lat_row = vec![interval.to_string()];
        for app in AppKind::ALL {
            let events = events_for(app, cores, cfg.quick);
            let report = run_point(app, SchemeKind::TStream, cores, events, interval);
            thr_row.push(format!("{:.1}", report.throughput_keps()));
            lat_row.push(format!(
                "{:.2}",
                report.latency.percentile(99.0).map(ms).unwrap_or(0.0)
            ));
        }
        thr_rows.push(thr_row);
        lat_rows.push(lat_row);
    }
    let header: Vec<&str> = std::iter::once("interval")
        .chain(AppKind::ALL.iter().map(|a| a.label()))
        .collect();
    println!("{}", render_table(&header, &thr_rows));

    println!("Figure 12(b): TStream p99 end-to-end latency (ms) vs punctuation interval ({cores} cores)\n");
    println!("{}", render_table(&header, &lat_rows));

    println!("Paper shape: throughput generally grows with the interval (especially for TP,");
    println!("whose 100 hot keys need large batches to expose parallelism); latency stays in");
    println!("the sub-/low-millisecond range until throughput saturates, then grows with the");
    println!("interval.");
}
