//! Figure 13: 99th-percentile end-to-end processing latency of every scheme
//! on the four applications (punctuation interval 500).

use tstream_apps::runner::render_table;
use tstream_apps::{AppKind, SchemeKind};
use tstream_bench::{events_for, ms, run_point, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(16);
    println!("Figure 13: p99 end-to-end processing latency in ms ({cores} cores, interval 500)\n");
    let mut rows = Vec::new();
    for scheme in SchemeKind::ALL {
        let mut row = vec![scheme.label().to_string()];
        for app in AppKind::ALL {
            let events = events_for(app, cores, cfg.quick);
            let report = run_point(app, scheme, cores, events, 500);
            row.push(format!(
                "{:.2}",
                report.latency.percentile(99.0).map(ms).unwrap_or(0.0)
            ));
        }
        rows.push(row);
    }
    let header: Vec<&str> = std::iter::once("scheme")
        .chain(AppKind::ALL.iter().map(|a| a.label()))
        .collect();
    println!("{}", render_table(&header, &rows));
    println!("Paper shape: despite batching, TStream's p99 latency is comparable to (and often");
    println!("lower than) the prior schemes, because its much higher throughput removes queueing");
    println!("delays (Section VI-F).");
}
