//! Figure 11: workload sensitivity of GS — (a) varying the percentage of
//! read requests (uniform keys, summation removed), (b) varying the Zipf
//! skew of a write-only workload.

use tstream_apps::runner::{render_table, run_benchmark, AppKind, RunOptions, SchemeKind};
use tstream_apps::workload::WorkloadSpec;
use tstream_bench::HarnessConfig;
use tstream_core::EngineConfig;
use tstream_txn::NumaModel;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Lock,
    SchemeKind::Mvlk,
    SchemeKind::Pat,
    SchemeKind::TStream,
];

fn run(cfg: &HarnessConfig, cores: usize, read_ratio: f64, skew: f64, scheme: SchemeKind) -> f64 {
    let events = if cfg.quick { 4_000 } else { 40_000 };
    let spec = WorkloadSpec::default()
        .events(events)
        .read_ratio(read_ratio)
        .skew(skew)
        .multi_partition(0.5, 4)
        .partitions(cores as u32);
    let engine = EngineConfig::with_executors(cores)
        .punctuation(500)
        .numa(NumaModel::classify_only());
    let mut options = RunOptions::new(spec, engine);
    options.pat_partitions = cores as u32;
    options.gs_with_summation = false;
    run_benchmark(AppKind::Gs, scheme, &options).throughput_keps()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let cores = cfg.max_cores.min(16);

    println!(
        "Figure 11(a): GS throughput vs percentage of read requests (skew 0, {cores} cores)\n"
    );
    let ratios: &[f64] = if cfg.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let mut rows = Vec::new();
    for &ratio in ratios {
        let mut row = vec![format!("{:.0}%", ratio * 100.0)];
        for scheme in SCHEMES {
            row.push(format!("{:.1}", run(&cfg, cores, ratio, 0.0, scheme)));
        }
        rows.push(row);
    }
    let header: Vec<&str> = std::iter::once("reads")
        .chain(SCHEMES.iter().map(|s| s.label()))
        .collect();
    println!("{}", render_table(&header, &rows));

    println!("Figure 11(b): GS throughput vs Zipf skew (write-only, {cores} cores)\n");
    let skews: &[f64] = if cfg.quick {
        &[0.0, 0.6, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let mut rows = Vec::new();
    for &skew in skews {
        let mut row = vec![format!("{skew:.1}")];
        for scheme in SCHEMES {
            row.push(format!("{:.1}", run(&cfg, cores, 0.0, skew, scheme)));
        }
        rows.push(row);
    }
    let header: Vec<&str> = std::iter::once("skew")
        .chain(SCHEMES.iter().map(|s| s.label()))
        .collect();
    println!("{}", render_table(&header, &rows));

    println!("Paper shape: the read/write mix barely moves the prior schemes (synchronisation");
    println!("dominates them); TStream stays well ahead across the whole range and remains");
    println!("tolerant to skew, while the lock-based schemes degrade as contention grows.");
}
